open Cobra_util

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* --- Bits ---------------------------------------------------------------- *)

let test_bits_roundtrip () =
  let b = Bits.of_int ~width:10 0x2a5 in
  check Alcotest.int "to_int" 0x2a5 (Bits.to_int b);
  check Alcotest.string "to_string" "1010100101" (Bits.to_string b);
  check Alcotest.bool "of_string" true (Bits.equal b (Bits.of_string "1010100101"))

let test_bits_wide () =
  (* widths above one limb *)
  let b = Bits.zero 100 in
  let b = Bits.set b 99 true in
  let b = Bits.set b 0 true in
  check Alcotest.bool "bit 99" true (Bits.get b 99);
  check Alcotest.bool "bit 0" true (Bits.get b 0);
  check Alcotest.int "popcount" 2 (Bits.popcount b);
  let shifted = Bits.shift_in_lsb b false in
  check Alcotest.bool "msb dropped" false (Bits.get shifted 99);
  check Alcotest.bool "bit 1 now set" true (Bits.get shifted 1)

let test_bits_shift_in () =
  let b = Bits.of_int ~width:4 0b0110 in
  let b = Bits.shift_in_lsb b true in
  check Alcotest.int "shift" 0b1101 (Bits.to_int b)

let test_bits_extract () =
  let b = Bits.of_int ~width:16 0xabcd in
  check Alcotest.int "extract mid" 0xbc (Bits.extract_int b ~lo:4 ~len:8);
  check Alcotest.int "extract beyond width reads zero" 0xa (Bits.extract_int b ~lo:12 ~len:8)

let test_bits_concat () =
  let hi = Bits.of_int ~width:4 0xa and lo = Bits.of_int ~width:8 0x5c in
  let c = Bits.concat ~hi ~lo in
  check Alcotest.int "width" 12 (Bits.width c);
  check Alcotest.int "value" 0xa5c (Bits.to_int c)

let test_bits_fold_xor () =
  let b = Bits.of_int ~width:12 0xABC in
  check Alcotest.int "fold 4" (0xa lxor 0xb lxor 0xc) (Bits.fold_xor b 4)

let prop_bits_string_roundtrip =
  QCheck.Test.make ~name:"bits string roundtrip" ~count:200
    QCheck.(pair (int_bound 1000000) (int_range 1 60))
    (fun (v, w) ->
      let v = v land ((1 lsl w) - 1) in
      let b = Bits.of_int ~width:w v in
      Bits.equal b (Bits.of_string (Bits.to_string b)) && Bits.to_int b = v)

let prop_bits_set_get =
  QCheck.Test.make ~name:"bits set/get" ~count:200
    QCheck.(pair (int_range 1 130) (int_bound 1000))
    (fun (w, i) ->
      let i = i mod w in
      let b = Bits.set (Bits.zero w) i true in
      Bits.get b i && Bits.popcount b = 1)

let prop_shift_in_window =
  QCheck.Test.make ~name:"history window keeps youngest bits" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) bool)
    (fun bits ->
      let w = 16 in
      let h = List.fold_left Bits.shift_in_lsb (Bits.zero w) bits in
      let expected =
        let arr = Array.of_list (List.rev bits) in
        (* arr.(0) is the youngest bit *)
        Array.to_list (Array.init (min w (Array.length arr)) (fun i -> arr.(i)))
      in
      List.for_all2 (fun i b -> Bits.get h i = b)
        (List.init (List.length expected) Fun.id)
        expected)

(* --- Counter ------------------------------------------------------------- *)

let test_counter_saturation () =
  let bits = 2 in
  let c = Counter.max_value ~bits in
  check Alcotest.int "inc saturates" c (Counter.increment ~bits c);
  check Alcotest.int "dec saturates" 0 (Counter.decrement ~bits 0);
  check Alcotest.bool "taken threshold" true (Counter.is_taken ~bits 2);
  check Alcotest.bool "not taken" false (Counter.is_taken ~bits 1)

let prop_counter_bounds =
  QCheck.Test.make ~name:"counter stays in range" ~count:500
    QCheck.(pair (int_range 1 8) (list bool))
    (fun (bits, updates) ->
      let v = List.fold_left (fun v t -> Counter.update ~bits v ~taken:t)
                (Counter.weakly_not_taken ~bits) updates in
      Counter.is_valid ~bits v)

let prop_signed_counter_bounds =
  QCheck.Test.make ~name:"signed counter stays in range" ~count:500
    QCheck.(pair (int_range 1 8) (list (int_range (-1) 1)))
    (fun (bits, dirs) ->
      let v = List.fold_left (fun v d -> Counter.update_signed ~bits v ~dir:d) 0 dirs in
      v >= Counter.signed_min ~bits && v <= Counter.signed_max ~bits)

(* --- Hashing ------------------------------------------------------------- *)

let test_fold_int () =
  check Alcotest.int "fold of zero" 0 (Hashing.fold_int 0 ~width:62 ~bits:10);
  check Alcotest.int "fold identity below width"
    0x155 (Hashing.fold_int 0x155 ~width:10 ~bits:10)

let prop_fold_in_range =
  QCheck.Test.make ~name:"fold_int lands in range" ~count:500
    QCheck.(pair (int_bound max_int) (int_range 1 20))
    (fun (v, bits) ->
      let f = Hashing.fold_int v ~width:62 ~bits in
      f >= 0 && f < 1 lsl bits)

let prop_folded_history_matches_reference =
  QCheck.Test.make ~name:"folded_history equals manual fold" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 80) bool)
    (fun bits ->
      let h = List.fold_left Bits.shift_in_lsb (Bits.zero 64) bits in
      let len = 24 and out = 7 in
      let manual =
        let v = ref 0 in
        let i = ref 0 in
        while !i < len do
          let chunk = min out (len - !i) in
          v := !v lxor Bits.extract_int h ~lo:!i ~len:chunk;
          i := !i + out
        done;
        !v
      in
      Hashing.folded_history h ~len ~bits:out = manual)

(* --- Circular buffer ----------------------------------------------------- *)

let test_cb_fifo_order () =
  let cb = Circular_buffer.create ~capacity:4 in
  let s0 = Circular_buffer.enqueue cb "a" in
  let s1 = Circular_buffer.enqueue cb "b" in
  check Alcotest.int "sequence increments" (s0 + 1) s1;
  check Alcotest.(pair int string) "oldest" (s0, "a") (Option.get (Circular_buffer.oldest cb));
  check Alcotest.(pair int string) "dequeue" (s0, "a") (Option.get (Circular_buffer.dequeue cb));
  check Alcotest.(pair int string) "next" (s1, "b") (Option.get (Circular_buffer.dequeue cb));
  check Alcotest.bool "empty" true (Circular_buffer.is_empty cb)

let test_cb_full () =
  let cb = Circular_buffer.create ~capacity:2 in
  ignore (Circular_buffer.enqueue cb 1);
  ignore (Circular_buffer.enqueue cb 2);
  check Alcotest.bool "full" true (Circular_buffer.is_full cb);
  Alcotest.check_raises "enqueue when full" (Failure "Circular_buffer.enqueue: full")
    (fun () -> ignore (Circular_buffer.enqueue cb 3))

let test_cb_drop_newer () =
  let cb = Circular_buffer.create ~capacity:8 in
  let seqs = List.map (fun i -> Circular_buffer.enqueue cb i) [ 0; 1; 2; 3; 4 ] in
  let pivot = List.nth seqs 2 in
  Circular_buffer.drop_newer_than cb pivot;
  check Alcotest.int "length" 3 (Circular_buffer.length cb);
  check Alcotest.bool "pivot live" true (Circular_buffer.contains cb pivot);
  check Alcotest.bool "younger dead" false (Circular_buffer.contains cb (pivot + 1));
  (* the window reopens after a squash *)
  let s = Circular_buffer.enqueue cb 99 in
  check Alcotest.int "reuses squashed numbers upward" (pivot + 1) s

let test_cb_iter_from () =
  let cb = Circular_buffer.create ~capacity:8 in
  List.iter (fun i -> ignore (Circular_buffer.enqueue cb i)) [ 10; 11; 12; 13 ];
  let acc = ref [] in
  Circular_buffer.iter_from cb 2 (fun _ v -> acc := v :: !acc);
  check Alcotest.(list int) "tail from seq 2" [ 12; 13 ] (List.rev !acc)

let prop_cb_set_get =
  QCheck.Test.make ~name:"circular buffer set/get" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 16) small_int)
    (fun values ->
      let cb = Circular_buffer.create ~capacity:16 in
      let seqs = List.map (fun v -> Circular_buffer.enqueue cb v) values in
      List.iter (fun s -> Circular_buffer.set cb s (Circular_buffer.get cb s * 2)) seqs;
      List.for_all2 (fun s v -> Circular_buffer.get cb s = v * 2) seqs values)

(* --- Bitpack ------------------------------------------------------------- *)

let test_bitpack_roundtrip () =
  let layout = [ 1; 4; 3; 10 ] in
  let values = [ 1; 9; 5; 777 ] in
  let packed = Bitpack.pack ~width:18 (List.combine values layout) in
  check Alcotest.(list int) "unpack" values (Bitpack.unpack packed layout)

let test_bitpack_overflow () =
  Alcotest.check_raises "value too large"
    (Invalid_argument "Bitpack.pack: value 4 does not fit in 2 bits") (fun () ->
      ignore (Bitpack.pack ~width:2 [ (4, 2) ]))

let prop_bitpack_roundtrip =
  QCheck.Test.make ~name:"bitpack roundtrip" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 8) (pair (int_bound 1000) (int_range 1 12)))
    (fun fields ->
      let fields = List.map (fun (v, w) -> (v land ((1 lsl w) - 1), w)) fields in
      let layout = List.map snd fields in
      let width = Bitpack.width_of layout in
      Bitpack.unpack (Bitpack.pack ~width fields) layout = List.map fst fields)

(* The incremental Packer must produce bit-identical vectors to the
   list-based pack, and the Cursor must read back exactly what unpack does —
   including fields straddling the 62-bit limb boundary (hence widths that
   push the total past 62). The same packer/cursor pair is reused across
   rounds, as the component hot paths do. *)
let prop_packer_cursor_equivalence =
  QCheck.Test.make ~name:"Packer/Cursor agree with pack/unpack" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 16) (pair (int_bound 100000) (int_range 0 20)))
    (fun fields ->
      let fields = List.map (fun (v, w) -> (v land ((1 lsl w) - 1), w)) fields in
      let layout = List.map snd fields in
      let width = Bitpack.width_of layout in
      let packer = Bitpack.Packer.create ~width in
      let cursor = Bitpack.Cursor.create () in
      List.for_all
        (fun _round ->
          List.iter (fun (v, bits) -> Bitpack.Packer.add packer v ~bits) fields;
          let incremental = Bitpack.Packer.finish packer in
          let listwise = Bitpack.pack ~width fields in
          Bits.equal incremental listwise
          && begin
               Bitpack.Cursor.reset cursor incremental;
               List.for_all
                 (fun (v, bits) -> Bitpack.Cursor.take cursor ~bits = v)
                 fields
             end)
        [ 1; 2; 3 ])

(* --- Stats --------------------------------------------------------------- *)

let test_harmonic_mean () =
  check (Alcotest.float 1e-9) "hmean" 1.2 (Stats.harmonic_mean [ 1.0; 1.5 ]);
  check (Alcotest.float 1e-9) "empty" 0.0 (Stats.harmonic_mean [])

let test_running () =
  let r = Stats.Running.create () in
  List.iter (Stats.Running.add r) [ 1.0; 2.0; 3.0; 4.0 ];
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.Running.mean r);
  check (Alcotest.float 1e-6) "variance" (5.0 /. 3.0) (Stats.Running.variance r)

let test_mpki () =
  check (Alcotest.float 1e-9) "mpki" 2.5 (Stats.mpki ~misses:25 ~instructions:10000)

(* --- Rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  check Alcotest.(list int) "same seed same stream" xs ys

let prop_rng_bound =
  QCheck.Test.make ~name:"rng respects bound" ~count:200
    QCheck.(pair (int_bound 10000) (int_range 1 50))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      List.for_all (fun _ -> let v = Rng.int r bound in v >= 0 && v < bound)
        (List.init 50 Fun.id))

let () =
  Alcotest.run "cobra_util"
    [
      ( "bits",
        [
          Alcotest.test_case "roundtrip" `Quick test_bits_roundtrip;
          Alcotest.test_case "wide vectors" `Quick test_bits_wide;
          Alcotest.test_case "shift_in_lsb" `Quick test_bits_shift_in;
          Alcotest.test_case "extract" `Quick test_bits_extract;
          Alcotest.test_case "concat" `Quick test_bits_concat;
          Alcotest.test_case "fold_xor" `Quick test_bits_fold_xor;
          qcheck prop_bits_string_roundtrip;
          qcheck prop_bits_set_get;
          qcheck prop_shift_in_window;
        ] );
      ( "counter",
        [
          Alcotest.test_case "saturation" `Quick test_counter_saturation;
          qcheck prop_counter_bounds;
          qcheck prop_signed_counter_bounds;
        ] );
      ( "hashing",
        [
          Alcotest.test_case "fold_int" `Quick test_fold_int;
          qcheck prop_fold_in_range;
          qcheck prop_folded_history_matches_reference;
        ] );
      ( "circular_buffer",
        [
          Alcotest.test_case "fifo order" `Quick test_cb_fifo_order;
          Alcotest.test_case "full" `Quick test_cb_full;
          Alcotest.test_case "drop newer" `Quick test_cb_drop_newer;
          Alcotest.test_case "iter_from" `Quick test_cb_iter_from;
          qcheck prop_cb_set_get;
        ] );
      ( "bitpack",
        [
          Alcotest.test_case "roundtrip" `Quick test_bitpack_roundtrip;
          Alcotest.test_case "overflow" `Quick test_bitpack_overflow;
          qcheck prop_bitpack_roundtrip;
          qcheck prop_packer_cursor_equivalence;
        ] );
      ( "stats",
        [
          Alcotest.test_case "harmonic mean" `Quick test_harmonic_mean;
          Alcotest.test_case "running stats" `Quick test_running;
          Alcotest.test_case "mpki" `Quick test_mpki;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          qcheck prop_rng_bound;
        ] );
    ]
