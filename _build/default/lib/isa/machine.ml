type t = {
  program : Program.t;
  regs : int array;
  mem : (int, int) Hashtbl.t;
  mutable pc : int;
  mutable halted : bool;
}

let create ?entry program =
  let pc = match entry with Some l -> Program.address_of program l | None -> program.Program.base in
  let regs = Array.make 32 0 in
  regs.(Insn.sp) <- 0x8000_0000;
  { program; regs; mem = Hashtbl.create 1024; pc; halted = false }

let pc t = t.pc
let halted t = t.halted
let reg t r = t.regs.(r)
let poke t ~addr v = Hashtbl.replace t.mem addr v
let peek t ~addr = match Hashtbl.find_opt t.mem addr with Some v -> v | None -> 0

let set_reg t r v = if r <> Insn.zero then t.regs.(r) <- v

let alu op a b =
  let shift_amount = b land 63 in
  match (op : Insn.alu_op) with
  | Add -> a + b
  | Sub -> a - b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Sll -> a lsl shift_amount
  | Srl -> a lsr shift_amount
  | Slt -> if a < b then 1 else 0
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b

let cond_holds c a b =
  match (c : Insn.cond) with Eq -> a = b | Ne -> a <> b | Lt -> a < b | Ge -> a >= b

let step t =
  if t.halted then None
  else begin
    let idx = (t.pc - t.program.Program.base) / 4 in
    if idx < 0 || idx >= Array.length t.program.Program.code then begin
      t.halted <- true;
      None
    end
    else begin
      let insn = t.program.Program.code.(idx) in
      let target = t.program.Program.targets.(idx) in
      let pc = t.pc in
      let srcs = Insn.uses insn in
      let dst = Insn.defines insn in
      let fallthrough = pc + 4 in
      let event =
        match insn with
        | Insn.Halt ->
          t.halted <- true;
          None
        | Insn.Nop ->
          t.pc <- fallthrough;
          Some (Trace.plain ~pc ~cls:Trace.Nop)
        | Insn.Alu (op, rd, rs1, rs2) ->
          set_reg t rd (alu op t.regs.(rs1) t.regs.(rs2));
          t.pc <- fallthrough;
          let cls =
            match op with Insn.Mul -> Trace.Mul | Insn.Div | Insn.Rem -> Trace.Div | _ -> Trace.Alu
          in
          Some { (Trace.plain ~pc ~cls) with srcs; dst }
        | Insn.Alui (op, rd, rs1, imm) ->
          set_reg t rd (alu op t.regs.(rs1) imm);
          t.pc <- fallthrough;
          Some { (Trace.plain ~pc ~cls:Trace.Alu) with srcs; dst }
        | Insn.Li (rd, imm) ->
          set_reg t rd imm;
          t.pc <- fallthrough;
          Some { (Trace.plain ~pc ~cls:Trace.Alu) with dst }
        | Insn.Fma (rd, rs1, rs2) ->
          set_reg t rd ((t.regs.(rs1) * t.regs.(rs2)) + t.regs.(rd));
          t.pc <- fallthrough;
          Some { (Trace.plain ~pc ~cls:Trace.Fp) with srcs = rd :: srcs; dst }
        | Insn.Load (rd, rs1, imm) ->
          let addr = t.regs.(rs1) + imm in
          set_reg t rd (peek t ~addr);
          t.pc <- fallthrough;
          Some { (Trace.plain ~pc ~cls:Trace.Load) with srcs; dst; addr = Some (addr * 4) }
        | Insn.Store (rs2, rs1, imm) ->
          let addr = t.regs.(rs1) + imm in
          poke t ~addr t.regs.(rs2);
          t.pc <- fallthrough;
          Some { (Trace.plain ~pc ~cls:Trace.Store) with srcs; addr = Some (addr * 4) }
        | Insn.Branch (c, rs1, rs2, _) ->
          let taken = cond_holds c t.regs.(rs1) t.regs.(rs2) in
          let next_pc = if taken then target else fallthrough in
          t.pc <- next_pc;
          Some
            {
              (Trace.plain ~pc ~cls:Trace.Alu) with
              srcs;
              branch = Some { Trace.kind = Cobra.Types.Cond; taken; target };
              next_pc;
            }
        | Insn.Jal (rd, _) ->
          set_reg t rd fallthrough;
          t.pc <- target;
          let kind = if rd = Insn.zero then Cobra.Types.Jump else Cobra.Types.Call in
          Some
            {
              (Trace.plain ~pc ~cls:Trace.Alu) with
              dst;
              branch = Some { Trace.kind; taken = true; target };
              next_pc = target;
            }
        | Insn.Jalr (rd, rs1, imm) ->
          let dyn_target = t.regs.(rs1) + imm in
          set_reg t rd fallthrough;
          t.pc <- dyn_target;
          let kind =
            if rd = Insn.zero && rs1 = Insn.ra then Cobra.Types.Ret
            else if rd <> Insn.zero then Cobra.Types.Call
            else Cobra.Types.Ind
          in
          Some
            {
              (Trace.plain ~pc ~cls:Trace.Alu) with
              srcs;
              dst;
              branch = Some { Trace.kind; taken = true; target = dyn_target };
              next_pc = dyn_target;
            }
      in
      event
    end
  end

let stream t () = step t

let static_decode (program : Program.t) ~pc =
  let idx = (pc - program.Program.base) / 4 in
  if pc land 3 <> 0 || idx < 0 || idx >= Array.length program.Program.code then None
  else begin
    let insn = program.Program.code.(idx) in
    let target = program.Program.targets.(idx) in
    let srcs = Insn.uses insn and dst = Insn.defines insn in
    let cls =
      match insn with
      | Insn.Alu (Insn.Mul, _, _, _) -> Trace.Mul
      | Insn.Alu ((Insn.Div | Insn.Rem), _, _, _) -> Trace.Div
      | Insn.Load _ -> Trace.Load
      | Insn.Store _ -> Trace.Store
      | Insn.Fma _ -> Trace.Fp
      | Insn.Nop | Insn.Halt -> Trace.Nop
      | Insn.Alu _ | Insn.Alui _ | Insn.Li _ | Insn.Branch _ | Insn.Jal _ | Insn.Jalr _ ->
        Trace.Alu
    in
    let branch =
      Option.map
        (fun kind ->
          (* direction unknown on the wrong path; indirect targets too *)
          { Trace.kind; taken = Cobra.Types.is_unconditional kind;
            target = (if target >= 0 then target else 0) })
        (Insn.classify_jump insn)
    in
    Some { (Trace.plain ~pc ~cls) with Trace.srcs; dst; branch }
  end

let run t ~max_insns =
  let rec loop acc n =
    if n <= 0 then List.rev acc
    else match step t with None -> List.rev acc | Some e -> loop (e :: acc) (n - 1)
  in
  loop [] max_insns
