lib/util/counter.mli:
