type branch_kind = Cond | Jump | Call | Ret | Ind

let pp_branch_kind ppf k =
  Format.pp_print_string ppf
    (match k with Cond -> "cond" | Jump -> "jump" | Call -> "call" | Ret -> "ret" | Ind -> "ind")

let equal_branch_kind (a : branch_kind) b = a = b

let is_unconditional = function Cond -> false | Jump | Call | Ret | Ind -> true

let branch_kind_to_int = function Cond -> 0 | Jump -> 1 | Call -> 2 | Ret -> 3 | Ind -> 4

let branch_kind_of_int = function
  | 0 -> Cond
  | 1 -> Jump
  | 2 -> Call
  | 3 -> Ret
  | 4 -> Ind
  | n -> invalid_arg (Printf.sprintf "Types.branch_kind_of_int: %d" n)

type resolved = { r_is_branch : bool; r_kind : branch_kind; r_taken : bool; r_target : int }

let no_branch = { r_is_branch = false; r_kind = Cond; r_taken = false; r_target = 0 }

let resolved_branch ~kind ~taken ~target =
  { r_is_branch = true; r_kind = kind; r_taken = taken; r_target = target }

type opinion = {
  o_branch : bool option;
  o_kind : branch_kind option;
  o_taken : bool option;
  o_target : int option;
}

let empty_opinion = { o_branch = None; o_kind = None; o_taken = None; o_target = None }

let full_opinion ~kind ~taken ~target =
  { o_branch = Some true; o_kind = Some kind; o_taken = Some taken; o_target = Some target }

let direction_opinion ~taken =
  { o_branch = Some true; o_kind = Some Cond; o_taken = Some taken; o_target = None }

let first_some a b = match a with Some _ -> a | None -> b

let merge_opinion ~strong ~weak =
  {
    o_branch = first_some strong.o_branch weak.o_branch;
    o_kind = first_some strong.o_kind weak.o_kind;
    o_taken = first_some strong.o_taken weak.o_taken;
    o_target = first_some strong.o_target weak.o_target;
  }

type prediction = opinion array

let unconditional_in (pred : prediction) i =
  match pred.(i).o_kind with Some k -> is_unconditional k | None -> false

let no_prediction ~width = Array.make width empty_opinion

let merge ~strong ~weak =
  if Array.length strong <> Array.length weak then
    invalid_arg "Types.merge: prediction width mismatch";
  (* Silent slots share the [empty_opinion] record, so physical equality is
     a safe and very common fast path. *)
  Array.map2
    (fun s w ->
      if s == empty_opinion then w
      else if w == empty_opinion then s
      else merge_opinion ~strong:s ~weak:w)
    strong weak

let equal_opinion a b =
  a.o_branch = b.o_branch && a.o_kind = b.o_kind && a.o_taken = b.o_taken
  && a.o_target = b.o_target

let equal_prediction a b =
  Array.length a = Array.length b && Array.for_all2 equal_opinion a b

type next_fetch = { taken_slot : int option; packet_len : int; next_pc : int option }

let is_taken_slot op =
  op.o_branch = Some true && op.o_taken = Some true && op.o_target <> None

let next_fetch pred ~pc:_ ~max_len =
  let len = min max_len (Array.length pred) in
  let rec find i =
    if i >= len then { taken_slot = None; packet_len = len; next_pc = None }
    else if is_taken_slot pred.(i) then
      { taken_slot = Some i; packet_len = i + 1; next_pc = pred.(i).o_target }
    else find (i + 1)
  in
  find 0

let direction_bits pred ~packet_len =
  let len = min packet_len (Array.length pred) in
  let rec loop i acc =
    if i >= len then List.rev acc
    else
      let op = pred.(i) in
      let is_cond_branch =
        op.o_branch = Some true && (op.o_kind = None || op.o_kind = Some Cond)
      in
      let acc = if is_cond_branch then (op.o_taken = Some true) :: acc else acc in
      if is_taken_slot op then List.rev acc else loop (i + 1) acc
  in
  loop 0 []

let pp_option pp ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some v -> pp ppf v

let pp_opinion ppf op =
  Format.fprintf ppf "{br=%a kind=%a taken=%a tgt=%a}"
    (pp_option Format.pp_print_bool) op.o_branch
    (pp_option pp_branch_kind) op.o_kind
    (pp_option Format.pp_print_bool) op.o_taken
    (pp_option (fun ppf -> Format.fprintf ppf "0x%x")) op.o_target

let pp_prediction ppf pred =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_opinion)
    (Array.to_seq pred)
