(** The COBRA predictor sub-component interface (paper Section III).

    A sub-component is a stateful object with a declared pipeline latency, a
    declared metadata width, and handlers for the five prediction events:

    - [predict] — begin a prediction for a fetch PC; returns the component's
      own (possibly partial, possibly empty) opinion vector plus a metadata
      bitvector of exactly [meta_bits] bits;
    - [fire] — the fetch packet proceeded; speculatively update local state
      (slots carry the {e predicted} outcomes);
    - [mispredict] — fast update at branch resolution (slots carry resolved
      outcomes; [culprit] names the offending slot);
    - [repair] — restore misspeculated local state for a squashed in-flight
      packet (issued during the composer's forwards-walk);
    - [update] — slow commit-time training in program order.

    The metadata returned from [predict] is stored in the generated history
    file and handed back verbatim in every subsequent event for the same
    packet, together with the predict-time context — exactly the paper's
    metadata contract (Section III-D/E). *)

type event = {
  ctx : Context.t;  (** predict-time context (PC and histories) *)
  meta : Cobra_util.Bits.t;  (** this component's metadata from predict time *)
  slots : Types.resolved array;  (** per-slot outcomes (predicted or resolved) *)
  culprit : int option;  (** mispredicted slot, for [mispredict]/[repair] *)
}

type event_kind = Predict | Fire | Mispredict | Repair | Update
(** The five prediction events of the component contract, as an enumerable
    label — the axis of the per-component event counters kept by
    [Cobra_stats]. *)

val all_event_kinds : event_kind list
(** In [event_kind_index] order. *)

val event_kind_name : event_kind -> string
val event_kind_index : event_kind -> int
(** A dense [0..4] index for counter arrays. *)

val pp_event_kind : Format.formatter -> event_kind -> unit

type family =
  | Counter_table
  | Btb
  | Micro_btb
  | Tagged_table
  | Tage
  | Loop
  | Selector
  | Perceptron
  | Corrector
  | Static
(** Broad structural family, used by the area model for grouping. *)

val pp_family : Format.formatter -> family -> unit

type t = private {
  name : string;
  family : family;
  latency : int;
  meta_bits : int;
  storage : Storage.t;
  state : Cobra_util.Slab.t;
      (** the component's complete mutable state, as one flat slab (empty
          for stateless components); see {!snapshot}/{!restore} *)
  predict :
    Context.t -> pred_in:Types.prediction list -> Types.prediction * Cobra_util.Bits.t;
  fire : event -> unit;
  mispredict : event -> unit;
  repair : event -> unit;
  update : event -> unit;
}

val make :
  name:string ->
  family:family ->
  latency:int ->
  meta_bits:int ->
  storage:Storage.t ->
  ?state:Cobra_util.Slab.t ->
  predict:
    (Context.t -> pred_in:Types.prediction list -> Types.prediction * Cobra_util.Bits.t) ->
  ?fire:(event -> unit) ->
  ?mispredict:(event -> unit) ->
  ?repair:(event -> unit) ->
  ?update:(event -> unit) ->
  unit ->
  t
(** Build a component. Unused events default to no-ops — implementations
    "may choose to use and ignore arbitrary subsets of these five signals".
    [state] is the component's flat state slab; handlers must close over it
    (and nothing else mutable) so that {!snapshot}/{!restore} capture the
    component completely. Defaults to {!Cobra_util.Slab.empty} for
    stateless components. Raises [Invalid_argument] when [latency < 1]
    (predictions cannot be made before Fetch-1) or [meta_bits < 0]. *)

val label : t -> string
(** ["NAME_n"], the paper's notation for a component of latency [n]. *)

(** {1 Flat-state snapshots}

    Because all mutable state lives in [state], checkpointing a component
    is a single memcpy — O(storage), independent of simulation length. *)

val state_cells : t -> int
(** Slab length in cells. *)

val snapshot : t -> Cobra_util.Slab.t
(** A fresh copy of the component's entire mutable state. *)

val restore : t -> Cobra_util.Slab.t -> unit
(** Overwrite the component's state with a snapshot taken earlier from
    the same component (or an identically-configured twin). Raises
    [Invalid_argument] on a slab-size mismatch. *)
