open Cobra
module Bits = Cobra_util.Bits

let check = Alcotest.check

(* --- helpers -------------------------------------------------------------- *)

let width = 4

(* A stub component with a fixed per-query behaviour and an event log. *)
type log_entry = Fired | Mispredicted of int option | Repaired | Updated

let stub ?(latency = 1) ?(meta_bits = 8) ?(meta_value = 0xAB) ~name behaviour =
  let log = ref [] in
  let predict ctx ~pred_in =
    (behaviour ctx pred_in, Bits.of_int ~width:meta_bits meta_value)
  in
  let push e (_ : Component.event) = log := e :: !log in
  let component =
    Component.make ~name ~family:Component.Static ~latency ~meta_bits
      ~storage:Storage.zero ~predict ~fire:(push Fired)
      ~mispredict:(fun ev -> log := Mispredicted ev.culprit :: !log)
      ~repair:(push Repaired) ~update:(push Updated) ()
  in
  (component, log)

let silent _ctx _pred_in = Types.no_prediction ~width

let always_taken ~target _ctx _pred_in =
  let p = Types.no_prediction ~width in
  p.(0) <- Types.full_opinion ~kind:Types.Cond ~taken:true ~target;
  p

let direction_only ~taken _ctx _pred_in =
  let p = Types.no_prediction ~width in
  p.(0) <- { Types.empty_opinion with o_taken = Some taken };
  p

let cfg =
  {
    Pipeline.fetch_width = width;
    ghist_bits = 16;
    lhist_bits = 8;
    lhist_entries = 64;
    history_entries = 8;
    path_bits = 16;
    predecode_history_correction = true;
  }

let no_branch_slots = Array.make width Types.no_branch

let taken_slots ~slot ~target =
  let s = Array.make width Types.no_branch in
  s.(slot) <- Types.resolved_branch ~kind:Types.Cond ~taken:true ~target;
  s

(* --- Types ---------------------------------------------------------------- *)

let test_merge_opinion () =
  let strong = { Types.empty_opinion with o_taken = Some true } in
  let weak = Types.full_opinion ~kind:Types.Cond ~taken:false ~target:0x40 in
  let m = Types.merge_opinion ~strong ~weak in
  check Alcotest.(option bool) "strong taken wins" (Some true) m.o_taken;
  check Alcotest.(option int) "weak target flows" (Some 0x40) m.o_target;
  check Alcotest.(option bool) "weak branch flows" (Some true) m.o_branch

let test_next_fetch () =
  let p = Types.no_prediction ~width in
  p.(2) <- Types.full_opinion ~kind:Types.Cond ~taken:true ~target:0x100;
  let nf = Types.next_fetch p ~pc:0x40 ~max_len:4 in
  check Alcotest.(option int) "taken slot" (Some 2) nf.taken_slot;
  check Alcotest.int "packet len" 3 nf.packet_len;
  check Alcotest.(option int) "target" (Some 0x100) nf.next_pc

let test_next_fetch_no_target () =
  (* a taken opinion without a target cannot redirect *)
  let p = Types.no_prediction ~width in
  p.(0) <- { Types.empty_opinion with o_branch = Some true; o_taken = Some true } ;
  let nf = Types.next_fetch p ~pc:0 ~max_len:4 in
  check Alcotest.(option int) "no redirect" None nf.next_pc;
  check Alcotest.int "full packet" 4 nf.packet_len

let test_direction_bits () =
  let p = Types.no_prediction ~width in
  p.(0) <- Types.direction_opinion ~taken:false;
  p.(1) <- Types.full_opinion ~kind:Types.Jump ~taken:true ~target:0x80;
  p.(2) <- Types.full_opinion ~kind:Types.Cond ~taken:true ~target:0x90;
  p.(3) <- Types.direction_opinion ~taken:true;
  (* the taken jump at slot 1 ends the packet: only slot 0's bit is pushed,
     and the jump itself contributes no conditional-history bit *)
  check Alcotest.(list bool) "dir bits" [ false ] (Types.direction_bits p ~packet_len:4);
  (* without the jump, bits accumulate until the taken cond branch *)
  p.(1) <- Types.empty_opinion;
  check Alcotest.(list bool) "dir bits stop at taken cond" [ false; true ]
    (Types.direction_bits p ~packet_len:4)

(* --- Topology ------------------------------------------------------------- *)

let test_topology_expression () =
  let a, _ = stub ~latency:3 ~name:"LOOP" silent in
  let b, _ = stub ~latency:3 ~name:"TAGE" silent in
  let c, _ = stub ~latency:2 ~name:"BIM" silent in
  let topo = Topology.(over a (over b (node c))) in
  check Alcotest.string "expression" "LOOP_3 > TAGE_3 > BIM_2" (Topology.to_expression topo);
  check Alcotest.int "depth" 3 (Topology.max_latency topo)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  loop 0

let test_topology_duplicate_names () =
  let a, _ = stub ~name:"X" silent in
  let b, _ = stub ~name:"X" silent in
  match Topology.validate Topology.(over a (node b)) with
  | Error msg ->
    check Alcotest.bool "mentions dup" true (contains_substring msg "duplicate")
  | Ok () -> Alcotest.fail "expected duplicate-name error"

(* --- Composer per-stage semantics (the paper's Section IV-A example) ------ *)

(* Build the two orderings of {uBTB_1, PHT_2, LOOP_2} and check the staged
   composites the paper describes. *)
let staged_composites ~ubtb_hits ~pht ~loop_pred order =
  let ubtb, _ =
    stub ~latency:1 ~name:"UBTB" (fun _ _ ->
        if ubtb_hits then
          let p = Types.no_prediction ~width in
          p.(0) <- Types.full_opinion ~kind:Types.Cond ~taken:true ~target:0x111;
          p
        else Types.no_prediction ~width)
  in
  let pht_c, _ =
    stub ~latency:2 ~name:"PHT" (fun _ _ ->
        match pht with
        | None -> Types.no_prediction ~width
        | Some taken ->
          let p = Types.no_prediction ~width in
          p.(0) <- { Types.empty_opinion with o_taken = Some taken };
          p)
  in
  let loop_c, _ =
    stub ~latency:2 ~name:"LOOP" (fun _ _ ->
        match loop_pred with
        | None -> Types.no_prediction ~width
        | Some taken ->
          let p = Types.no_prediction ~width in
          p.(0) <- { Types.empty_opinion with o_taken = Some taken };
          p)
  in
  let topo =
    match order with
    | `Loop_over_pht -> Topology.(over loop_c (over pht_c (node ubtb)))
    | `Ubtb_over_pht -> Topology.(over ubtb (over pht_c (node loop_c)))
  in
  let pl = Pipeline.create cfg topo in
  let tok = Pipeline.predict pl ~pc:0x1000 ~max_len:4 in
  Pipeline.stages pl tok

let test_topology_loop_overrides () =
  (* LOOP_2 > PHT_2 > UBTB_1: at stage 1 only the uBTB speaks; at stage 2
     the loop predictor overrides the PHT which overrides the uBTB. *)
  let stages =
    staged_composites ~ubtb_hits:true ~pht:(Some false) ~loop_pred:(Some true)
      `Loop_over_pht
  in
  check Alcotest.(option bool) "stage1 = uBTB taken" (Some true) stages.(0).(0).o_taken;
  check Alcotest.(option bool) "stage2 = LOOP wins" (Some true) stages.(1).(0).o_taken;
  let stages2 =
    staged_composites ~ubtb_hits:true ~pht:(Some false) ~loop_pred:None `Loop_over_pht
  in
  check Alcotest.(option bool) "stage2 = PHT overrides uBTB" (Some false)
    stages2.(1).(0).o_taken;
  let stages3 =
    staged_composites ~ubtb_hits:true ~pht:None ~loop_pred:None `Loop_over_pht
  in
  check Alcotest.(option bool) "stage2 carries uBTB when others silent" (Some true)
    stages3.(1).(0).o_taken

let test_topology_ubtb_strongest () =
  (* UBTB_1 > PHT_2 > LOOP_2: a uBTB hit is final in both cycles. *)
  let stages =
    staged_composites ~ubtb_hits:true ~pht:(Some false) ~loop_pred:(Some false)
      `Ubtb_over_pht
  in
  check Alcotest.(option bool) "stage2 keeps uBTB" (Some true) stages.(1).(0).o_taken;
  (* when the uBTB misses, the PHT wins over the loop predictor *)
  let stages2 =
    staged_composites ~ubtb_hits:false ~pht:(Some true) ~loop_pred:(Some false)
      `Ubtb_over_pht
  in
  check Alcotest.(option bool) "stage1 empty" None stages2.(0).(0).o_taken;
  check Alcotest.(option bool) "stage2 PHT over LOOP" (Some true) stages2.(1).(0).o_taken

let test_arbitrate_default_path () =
  (* TOURNEY_3 > [GHT_2, LHT_2]: before the selector responds, the first
     sub-topology provides the composite. *)
  let ght, _ = stub ~latency:2 ~name:"GHT" (direction_only ~taken:true) in
  let lht, _ = stub ~latency:2 ~name:"LHT" (direction_only ~taken:false) in
  let sel, _ =
    stub ~latency:3 ~name:"TOURNEY" (fun _ pred_in ->
        match pred_in with
        | [ _g; l ] ->
          (* always choose the second input *)
          let p = Types.no_prediction ~width in
          p.(0) <- { Types.empty_opinion with o_taken = l.(0).Types.o_taken };
          p
        | _ -> Alcotest.fail "selector expected two inputs")
  in
  let topo = Topology.arbitrate sel [ Topology.node ght; Topology.node lht ] in
  let pl = Pipeline.create cfg topo in
  let tok = Pipeline.predict pl ~pc:0x2000 ~max_len:4 in
  let stages = Pipeline.stages pl tok in
  check Alcotest.(option bool) "stage2 = default (GHT)" (Some true) stages.(1).(0).o_taken;
  check Alcotest.(option bool) "stage3 = selector choice (LHT)" (Some false)
    stages.(2).(0).o_taken

let test_arbitrate_validation () =
  (* selector may not consume predict_in that arrives after its own latency *)
  let slow, _ = stub ~latency:3 ~name:"SLOW" silent in
  let fast, _ = stub ~latency:1 ~name:"FAST" silent in
  let sel, _ = stub ~latency:2 ~name:"SEL" silent in
  let topo = Topology.arbitrate sel [ Topology.node slow; Topology.node fast ] in
  match Topology.validate topo with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected latency violation"

(* --- Pipeline protocol ---------------------------------------------------- *)

let simple_pipeline () =
  let comp, log = stub ~latency:1 ~name:"P" (always_taken ~target:0x500) in
  (Pipeline.create cfg (Topology.node comp), log)

let test_metadata_roundtrip () =
  let comp, _ = stub ~latency:1 ~meta_bits:12 ~meta_value:0x5A5 ~name:"M" silent in
  let seen = ref [] in
  let spy =
    Component.make ~name:"SPY" ~family:Component.Static ~latency:1 ~meta_bits:4
      ~storage:Storage.zero
      ~predict:(fun _ ~pred_in:_ -> (Types.no_prediction ~width, Bits.of_int ~width:4 0x9))
      ~update:(fun ev -> seen := Bits.to_int ev.meta :: !seen)
      ()
  in
  let pl = Pipeline.create cfg Topology.(over comp (node spy)) in
  let tok = Pipeline.predict pl ~pc:0x40 ~max_len:4 in
  ignore (Pipeline.fire pl tok ~slots:no_branch_slots ~packet_len:4);
  Pipeline.commit pl;
  check Alcotest.(list int) "spy got its own meta back" [ 0x9 ] !seen

let test_fire_and_commit_events () =
  let pl, log = simple_pipeline () in
  let tok = Pipeline.predict pl ~pc:0x40 ~max_len:4 in
  let seq = Pipeline.fire pl tok ~slots:(taken_slots ~slot:0 ~target:0x500) ~packet_len:1 in
  Pipeline.resolve pl ~seq ~slot:0 (Types.resolved_branch ~kind:Types.Cond ~taken:true ~target:0x500);
  Pipeline.commit pl;
  check Alcotest.bool "fire then update" true
    (match List.rev !log with [ Fired; Updated ] -> true | _ -> false)

let test_ghist_speculative_update () =
  let pl, _ = simple_pipeline () in
  let tok = Pipeline.predict pl ~pc:0x40 ~max_len:4 in
  (* the stage-1 prediction is taken at slot 0 -> one '1' bit pushed *)
  check Alcotest.(list bool) "applied bits" [ true ] (Pipeline.applied_dir_bits pl tok);
  check Alcotest.int "ghist lsb set" 1 (Bits.to_int (Bits.extract (Pipeline.ghist_value pl) ~lo:0 ~len:1))

let test_squash_restores_ghist () =
  let pl, _ = simple_pipeline () in
  let before = Pipeline.ghist_value pl in
  let tok = Pipeline.predict pl ~pc:0x40 ~max_len:4 in
  let _tok2 = Pipeline.predict pl ~pc:0x80 ~max_len:4 in
  Pipeline.squash_from pl tok;
  check Alcotest.bool "ghist restored" true (Bits.equal before (Pipeline.ghist_value pl));
  check Alcotest.(list int) "no pending" [] (List.map (fun _ -> 0) (Pipeline.pending_tokens pl))

let test_revise_dir_bits () =
  let pl, _ = simple_pipeline () in
  let tok = Pipeline.predict pl ~pc:0x40 ~max_len:4 in
  Pipeline.revise_dir_bits pl tok [ false; true ];
  check Alcotest.(list bool) "revised" [ false; true ] (Pipeline.applied_dir_bits pl tok);
  let g = Pipeline.ghist_value pl in
  check Alcotest.int "ghist low bits = 01b reversed push" 0b01
    (Bits.extract_int g ~lo:0 ~len:2)

let test_mispredict_repair () =
  let pl, log = simple_pipeline () in
  (* fire three packets, then mispredict the first *)
  let fire_one pc =
    let tok = Pipeline.predict pl ~pc ~max_len:4 in
    Pipeline.fire pl tok ~slots:(taken_slots ~slot:0 ~target:0x500) ~packet_len:1
  in
  let s0 = fire_one 0x40 in
  let _s1 = fire_one 0x500 in
  let _s2 = fire_one 0x500 in
  log := [];
  Pipeline.mispredict pl ~seq:s0 ~slot:0
    (Types.resolved_branch ~kind:Types.Cond ~taken:false ~target:0);
  (* repairs for the two younger packets first, then the culprit's fast
     mispredict update (last, so its corrections are final) *)
  let events = List.rev !log in
  check Alcotest.bool "repairs then mispredict" true
    (match events with
    | [ Repaired; Repaired; Mispredicted (Some 0) ] -> true
    | _ -> false);
  check Alcotest.int "younger squashed" 1 (Pipeline.inflight pl);
  (* the corrected not-taken bit is now the youngest history bit *)
  check Alcotest.int "ghist corrected" 0
    (Bits.extract_int (Pipeline.ghist_value pl) ~lo:0 ~len:1)

let test_mispredict_truncates_packet () =
  let pl, _ = simple_pipeline () in
  let tok = Pipeline.predict pl ~pc:0x40 ~max_len:4 in
  let slots = Array.make width Types.no_branch in
  slots.(1) <- Types.resolved_branch ~kind:Types.Cond ~taken:false ~target:0;
  let seq = Pipeline.fire pl tok ~slots ~packet_len:4 in
  Pipeline.mispredict pl ~seq ~slot:1
    (Types.resolved_branch ~kind:Types.Cond ~taken:true ~target:0x900);
  let entry = Pipeline.entry pl seq in
  check Alcotest.int "packet cut after culprit" 2 entry.e_packet_len;
  check Alcotest.(list bool) "dir bits corrected" [ true ] entry.e_dir_bits

let test_lhist_speculation_and_squash () =
  (* an opinion must claim branch existence (o_branch) for history pushes *)
  let comp, _ =
    stub ~latency:1 ~name:"T" (fun _ _ ->
        let p = Types.no_prediction ~width in
        p.(0) <- Types.direction_opinion ~taken:true;
        p)
  in
  let pl = Pipeline.create cfg (Topology.node comp) in
  let pc = 0x40 in
  let before = Pipeline.lhist_value pl ~pc in
  let tok = Pipeline.predict pl ~pc ~max_len:4 in
  let after = Pipeline.lhist_value pl ~pc in
  check Alcotest.bool "lhist pushed" false (Bits.equal before after);
  Pipeline.squash_from pl tok;
  check Alcotest.bool "lhist restored" true
    (Bits.equal before (Pipeline.lhist_value pl ~pc))

let test_fire_backpressure () =
  let pl, _ = simple_pipeline () in
  for i = 0 to cfg.history_entries - 1 do
    let tok = Pipeline.predict pl ~pc:(0x40 + (64 * i)) ~max_len:4 in
    ignore (Pipeline.fire pl tok ~slots:no_branch_slots ~packet_len:4)
  done;
  check Alcotest.bool "full" false (Pipeline.can_fire pl);
  Pipeline.commit pl;
  check Alcotest.bool "commit frees" true (Pipeline.can_fire pl)

let test_meta_width_enforced () =
  let bad =
    Component.make ~name:"BAD" ~family:Component.Static ~latency:1 ~meta_bits:8
      ~storage:Storage.zero
      ~predict:(fun _ ~pred_in:_ -> (Types.no_prediction ~width, Bits.zero 4))
      ()
  in
  let pl = Pipeline.create cfg (Topology.node bad) in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "component BAD returned 4 metadata bits, declared 8") (fun () ->
      ignore (Pipeline.predict pl ~pc:0 ~max_len:4))

(* --- history providers: property tests against reference models ---------- *)

(* Reference model for the global history provider: a plain list of bits,
   youngest first, truncated to the register width. *)
let prop_ghist_provider_matches_reference =
  let open QCheck in
  (* ops: push a packet's bits / commit oldest / drop pending from k /
     replace pending at k *)
  let op_gen =
    Gen.oneof
      [
        Gen.map (fun bits -> `Push bits) (Gen.list_size (Gen.int_range 0 3) Gen.bool);
        Gen.return `Commit;
        Gen.map (fun k -> `Drop k) (Gen.int_range 0 4);
        Gen.map2 (fun k bits -> `Replace (k, bits)) (Gen.int_range 0 4)
          (Gen.list_size (Gen.int_range 0 3) Gen.bool);
      ]
  in
  QCheck.Test.make ~name:"ghist provider matches list reference" ~count:200
    (make ~print:(fun _ -> "<ops>") (Gen.list_size (Gen.int_range 1 40) op_gen))
    (fun ops ->
      let bits = 12 in
      let g = Ghist_provider.create ~bits in
      (* reference: committed bits (youngest first) and pending packets *)
      let committed = ref [] in
      let pending = ref [] in
      List.iter
        (fun op ->
          match op with
          | `Push packet -> (
            Ghist_provider.push_pending g packet;
            pending := !pending @ [ packet ])
          | `Commit ->
            if Ghist_provider.pending_count g > 0 then begin
              Ghist_provider.commit_oldest g;
              match !pending with
              | p :: rest ->
                committed := List.rev p @ !committed;
                pending := rest
              | [] -> assert false
            end
          | `Drop k ->
            if k <= List.length !pending then begin
              Ghist_provider.drop_pending_from g k;
              pending := List.filteri (fun i _ -> i < k) !pending
            end
          | `Replace (k, packet) ->
            if k < List.length !pending then begin
              Ghist_provider.replace_pending g ~depth:k packet;
              pending := List.mapi (fun i p -> if i = k then packet else p) !pending
            end)
        ops;
      let expected =
        (* youngest bit first: newest pending packet's newest bit, then back
           through pending packets, then the committed bits *)
        let all = List.concat (List.map List.rev (List.rev !pending)) @ !committed in
        List.filteri (fun i _ -> i < bits) all
      in
      let v = Ghist_provider.value g in
      List.for_all2
        (fun i b -> Bits.get v i = b)
        (List.init (List.length expected) Fun.id)
        expected)

let prop_lhist_push_restore_roundtrip =
  QCheck.Test.make ~name:"lhist restore undoes pushes" ~count:200
    QCheck.(list (pair (int_bound 1000) bool))
    (fun pushes ->
      let l = Lhist_provider.create ~entries:32 ~bits:8 in
      let saved =
        List.map (fun (pc, b) ->
            let prior = Lhist_provider.read l ~pc in
            Lhist_provider.push l ~pc b;
            (pc, prior))
          pushes
      in
      List.iter (fun (pc, prior) -> Lhist_provider.restore l ~pc prior) (List.rev saved);
      List.for_all (fun (pc, _) -> Bits.to_int (Lhist_provider.read l ~pc) = 0) pushes)

(* --- path history provider ------------------------------------------------ *)

let test_phist_updates_on_taken_branches () =
  let pl, _ = simple_pipeline () in
  let before = Pipeline.phist_value pl in
  let tok = Pipeline.predict pl ~pc:0x40 ~max_len:4 in
  (* the stub predicts a taken branch at slot 0 -> path bits pushed *)
  check Alcotest.bool "phist changed" false
    (Bits.equal before (Pipeline.phist_value pl));
  (* squashing the packet restores it *)
  Pipeline.squash_from pl tok;
  check Alcotest.bool "phist restored on squash" true
    (Bits.equal before (Pipeline.phist_value pl))

let test_phist_silent_on_fallthrough () =
  let comp, _ = stub ~latency:1 ~name:"S" silent in
  let pl = Pipeline.create cfg (Topology.node comp) in
  let before = Pipeline.phist_value pl in
  ignore (Pipeline.predict pl ~pc:0x40 ~max_len:4);
  check Alcotest.bool "no taken branch, no path bits" true
    (Bits.equal before (Pipeline.phist_value pl))

let test_phist_restored_on_mispredict () =
  let pl, _ = simple_pipeline () in
  let fire_one pc =
    let tok = Pipeline.predict pl ~pc ~max_len:4 in
    Pipeline.fire pl tok ~slots:(taken_slots ~slot:0 ~target:0x500) ~packet_len:1
  in
  let s0 = fire_one 0x40 in
  let phist_after_s0 = Pipeline.phist_value pl in
  let _s1 = fire_one 0x500 in
  let _s2 = fire_one 0x500 in
  (* mispredict s0 as not-taken: the path history must rewind to s0's
     snapshot with no contribution from it (not taken => no path bits) *)
  Pipeline.mispredict pl ~seq:s0 ~slot:0
    (Types.resolved_branch ~kind:Types.Cond ~taken:false ~target:0);
  let entry = Pipeline.entry pl s0 in
  check Alcotest.(list bool) "entry path bits cleared" [] entry.e_path_bits;
  check Alcotest.bool "phist rewound below post-fire value" false
    (Bits.equal phist_after_s0 (Pipeline.phist_value pl))

let test_phist_disabled_when_width_zero () =
  let comp, _ = stub ~latency:1 ~name:"P" (always_taken ~target:0x500) in
  let pl = Pipeline.create { cfg with Pipeline.path_bits = 0 } (Topology.node comp) in
  ignore (Pipeline.predict pl ~pc:0x40 ~max_len:4);
  (* context exposes a zero-width path history *)
  let tok = Pipeline.predict pl ~pc:0x80 ~max_len:4 in
  check Alcotest.int "zero-width phist in context" 0
    (Bits.width (Pipeline.context pl tok).Context.phist)

(* Random chains of stub components with random latencies: the pipeline must
   elaborate, predict at every stage, and fire/commit without error; the
   depth equals the max latency. *)
let prop_random_chain_topologies =
  QCheck.Test.make ~name:"random chain topologies elaborate and run" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 6) (int_range 1 4))
    (fun latencies ->
      let comps =
        List.mapi
          (fun i lat ->
            fst
              (stub ~latency:lat ~name:(Printf.sprintf "C%d" i)
                 (if i mod 2 = 0 then direction_only ~taken:(i mod 4 = 0)
                  else always_taken ~target:(0x1000 + (16 * i)))))
          latencies
      in
      let topo =
        match comps with
        | first :: rest ->
          List.fold_left (fun acc c -> Topology.over c acc) (Topology.node first) rest
        | [] -> assert false
      in
      let pl = Pipeline.create cfg topo in
      let depth_ok = Pipeline.depth pl = List.fold_left max 1 latencies in
      let tok = Pipeline.predict pl ~pc:0x40 ~max_len:4 in
      let stages = Pipeline.stages pl tok in
      let stage_count_ok = Array.length stages = Pipeline.depth pl in
      let seq = Pipeline.fire pl tok ~slots:no_branch_slots ~packet_len:4 in
      Pipeline.commit pl;
      depth_ok && stage_count_ok && seq >= 0)

let test_storage_accounting () =
  let pl, _ = simple_pipeline () in
  let s = Pipeline.storage pl in
  let m = Pipeline.management_storage pl in
  check Alcotest.bool "management includes lhist table" true
    (m.Storage.sram_bits >= cfg.lhist_entries * cfg.lhist_bits);
  check Alcotest.bool "total >= management" true
    (Storage.total_bits s >= Storage.total_bits m)

let () =
  Alcotest.run "cobra_core"
    [
      ( "types",
        [
          Alcotest.test_case "merge opinion" `Quick test_merge_opinion;
          Alcotest.test_case "next_fetch" `Quick test_next_fetch;
          Alcotest.test_case "next_fetch w/o target" `Quick test_next_fetch_no_target;
          Alcotest.test_case "direction bits" `Quick test_direction_bits;
        ] );
      ( "topology",
        [
          Alcotest.test_case "expression" `Quick test_topology_expression;
          Alcotest.test_case "duplicate names rejected" `Quick test_topology_duplicate_names;
          Alcotest.test_case "loop overrides pht" `Quick test_topology_loop_overrides;
          Alcotest.test_case "ubtb strongest" `Quick test_topology_ubtb_strongest;
          Alcotest.test_case "arbitrate default path" `Quick test_arbitrate_default_path;
          Alcotest.test_case "arbitrate validation" `Quick test_arbitrate_validation;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "metadata roundtrip" `Quick test_metadata_roundtrip;
          Alcotest.test_case "fire/commit events" `Quick test_fire_and_commit_events;
          Alcotest.test_case "ghist speculation" `Quick test_ghist_speculative_update;
          Alcotest.test_case "squash restores ghist" `Quick test_squash_restores_ghist;
          Alcotest.test_case "revise dir bits" `Quick test_revise_dir_bits;
          Alcotest.test_case "mispredict repair" `Quick test_mispredict_repair;
          Alcotest.test_case "mispredict truncates packet" `Quick test_mispredict_truncates_packet;
          Alcotest.test_case "lhist speculation" `Quick test_lhist_speculation_and_squash;
          Alcotest.test_case "fire backpressure" `Quick test_fire_backpressure;
          Alcotest.test_case "meta width enforced" `Quick test_meta_width_enforced;
          Alcotest.test_case "storage accounting" `Quick test_storage_accounting;
        ] );
      ( "path history",
        [
          Alcotest.test_case "updates on taken" `Quick test_phist_updates_on_taken_branches;
          Alcotest.test_case "silent on fallthrough" `Quick test_phist_silent_on_fallthrough;
          Alcotest.test_case "restored on mispredict" `Quick test_phist_restored_on_mispredict;
          Alcotest.test_case "disabled at width 0" `Quick test_phist_disabled_when_width_zero;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_ghist_provider_matches_reference;
          QCheck_alcotest.to_alcotest prop_lhist_push_restore_roundtrip;
          QCheck_alcotest.to_alcotest prop_random_chain_topologies;
        ] );
    ]
