lib/components/loop_pred.mli: Cobra
