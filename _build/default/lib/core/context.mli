(** Query context handed to predictor sub-components.

    Matching the paper's pipeline contract (Fig 2): the fetch PC is available
    at cycle 0, and the global and local history vectors are provided at the
    end of the first cycle — which is why only components of latency [>= 1]
    exist, and all of them may use the histories. *)

type t = {
  pc : int;  (** fetch PC (byte address of slot 0) *)
  fetch_width : int;  (** slots per fetch packet *)
  ghist : Cobra_util.Bits.t;  (** speculative global history, youngest bit = LSB *)
  lhists : Cobra_util.Bits.t array;  (** per-slot local history, indexed by slot *)
  phist : Cobra_util.Bits.t;
      (** speculative path history: folded target bits of recent taken
          branches (paper IV-B3's "other variants of history information");
          width 0 when the pipeline does not generate a path provider *)
}

val slot_pc : t -> int -> int
(** [slot_pc t i] is the byte address of slot [i] (4-byte instructions). *)

val make :
  pc:int ->
  fetch_width:int ->
  ghist:Cobra_util.Bits.t ->
  lhists:Cobra_util.Bits.t array ->
  ?phist:Cobra_util.Bits.t ->
  unit ->
  t
