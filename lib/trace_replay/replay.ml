open Cobra

type source = unit -> Btrace.record option

type result = {
  design : string;
  trace : string;
  instructions : int;
  branches : int;
  cond_branches : int;
  mispredicts : int;
  cond_mispredicts : int;
  elapsed_s : float;
}

exception Timeout of { branches : int; deadline_s : float }

let () =
  Printexc.register_printer (function
    | Timeout { branches; deadline_s = _ } ->
      Some (Printf.sprintf "Replay.Timeout after %d branches (deadline passed)" branches)
    | _ -> None)

let mpki r = Cobra_util.Stats.mpki ~misses:r.mispredicts ~instructions:r.instructions

let accuracy r =
  if r.branches = 0 then 1.0
  else 1.0 -. (float_of_int r.mispredicts /. float_of_int r.branches)

let per_sec count elapsed =
  float_of_int count /. (if elapsed > 0.0 then elapsed else epsilon_float)

let branches_per_sec r = per_sec r.branches r.elapsed_s
let insns_per_sec r = per_sec r.instructions r.elapsed_s

let to_perf r =
  let p = Cobra_uarch.Perf.create () in
  p.Cobra_uarch.Perf.instructions <- r.instructions;
  p.Cobra_uarch.Perf.branches <- r.branches;
  p.Cobra_uarch.Perf.cond_branches <- r.cond_branches;
  p.Cobra_uarch.Perf.mispredicts <- r.mispredicts;
  p.Cobra_uarch.Perf.cond_mispredicts <- r.cond_mispredicts;
  p

let summary r =
  Printf.sprintf
    "%s on %s: %d branches (%d cond) over %d insns, %d mispredicts (%d cond), MPKI %.3f, \
     accuracy %.2f%%, %.2fs (%.0f branches/s)"
    r.design r.trace r.branches r.cond_branches r.instructions r.mispredicts
    r.cond_mispredicts (mpki r)
    (100.0 *. accuracy r)
    r.elapsed_s (branches_per_sec r)

(* The per-branch protocol below must stay in lockstep with
   Cobra_eval.Software_model.run and the conformance kit's twin driver: the
   replay-vs-pipeline MPKI equality guarantee is exactly this. *)
let run ?(max_branches = max_int) ?(max_insns = max_int) ?deadline ?observe ?progress
    ?(progress_every = 262_144) ~design ~trace pl source =
  if progress_every < 1 then invalid_arg "Replay.run: progress_every < 1";
  let width = (Pipeline.config pl).Pipeline.fetch_width in
  let slots = Array.make width Types.no_branch in
  let instructions = ref 0 in
  let branches = ref 0 in
  let cond_branches = ref 0 in
  let mispredicts = ref 0 in
  let cond_mispredicts = ref 0 in
  let t0 = Unix.gettimeofday () in
  let continue_ = ref true in
  while !continue_ do
    (* amortized deadline check: a poisoned or huge trace cannot wedge a
       serving domain past its budget *)
    (match deadline with
    | Some d when !branches land 2047 = 0 && Unix.gettimeofday () > d ->
      raise (Timeout { branches = !branches; deadline_s = d })
    | _ -> ());
    match source () with
    | None -> continue_ := false
    | Some r ->
      if !branches >= max_branches || !instructions + Btrace.insns r > max_insns then
        continue_ := false
      else begin
        instructions := !instructions + Btrace.insns r;
        incr branches;
        let kind = r.Btrace.b_kind in
        let is_cond = Types.equal_branch_kind kind Types.Cond in
        if is_cond then incr cond_branches;
        let tok = Pipeline.predict pl ~pc:r.Btrace.b_pc ~max_len:1 in
        let stages = Pipeline.stages pl tok in
        let final = (stages.(Array.length stages - 1)).(0) in
        let taken_pred =
          match final.Types.o_taken with
          | Some t -> t
          | None -> Types.is_unconditional kind
        in
        let target_pred = Option.value final.Types.o_target ~default:(-1) in
        let known_target = r.Btrace.b_target >= 0 in
        let wrong =
          taken_pred <> r.Btrace.b_taken
          || (r.Btrace.b_taken
             && Types.is_unconditional kind
             && (not (Types.equal_branch_kind kind Types.Ret))
             && known_target
             && target_pred <> r.Btrace.b_target)
        in
        if wrong then begin
          incr mispredicts;
          if is_cond then incr cond_mispredicts
        end;
        (match observe with Some f -> f r ~taken_pred ~wrong | None -> ());
        let target = if known_target then r.Btrace.b_target else 0 in
        slots.(0) <-
          Types.resolved_branch ~kind ~taken:taken_pred
            ~target:(if taken_pred then target else 0);
        let seq = Pipeline.fire pl tok ~slots ~packet_len:1 in
        let actual = Types.resolved_branch ~kind ~taken:r.Btrace.b_taken ~target in
        if wrong then Pipeline.mispredict pl ~seq ~slot:0 actual
        else Pipeline.resolve pl ~seq ~slot:0 actual;
        (* immediate commit: predictor-only replay has no backend to wait on *)
        Pipeline.commit pl;
        match progress with
        | Some f when !branches mod progress_every = 0 ->
          f ~branches:!branches ~insns:!instructions
        | _ -> ()
      end
  done;
  {
    design;
    trace;
    instructions = !instructions;
    branches = !branches;
    cond_branches = !cond_branches;
    mispredicts = !mispredicts;
    cond_mispredicts = !cond_mispredicts;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Compiled engine: the same loop over the staged-compilation product of
   the design. [Engine.step] is the whole per-branch transaction (fused
   predict/fire/resolve/commit), so the loop body reduces to counter
   bookkeeping; the compiled_twin conformance checks certify that every
   per-branch decision and every state bit matches [run] above. *)

module Engine = Cobra_compile.Engine

type engine_kind = [ `Interpreted | `Compiled ]

let engine_name = function `Interpreted -> "interpreted" | `Compiled -> "compiled"

let engine_of_string = function
  | "interpreted" -> `Interpreted
  | "compiled" -> `Compiled
  | s -> invalid_arg (Printf.sprintf "Replay.engine_of_string: %S" s)

let compiled (d : Cobra_eval.Designs.t) =
  Engine.create d.Cobra_eval.Designs.pipeline_config (d.Cobra_eval.Designs.make ())

let run_compiled ?(max_branches = max_int) ?(max_insns = max_int) ?deadline ?observe
    ?progress ?(progress_every = 262_144) ~design ~trace eng source =
  if progress_every < 1 then invalid_arg "Replay.run_compiled: progress_every < 1";
  let instructions = ref 0 in
  let branches = ref 0 in
  let cond_branches = ref 0 in
  let mispredicts = ref 0 in
  let cond_mispredicts = ref 0 in
  let t0 = Unix.gettimeofday () in
  let continue_ = ref true in
  while !continue_ do
    (match deadline with
    | Some d when !branches land 2047 = 0 && Unix.gettimeofday () > d ->
      raise (Timeout { branches = !branches; deadline_s = d })
    | _ -> ());
    match source () with
    | None -> continue_ := false
    | Some r ->
      if !branches >= max_branches || !instructions + Btrace.insns r > max_insns then
        continue_ := false
      else begin
        instructions := !instructions + Btrace.insns r;
        incr branches;
        let kind = r.Btrace.b_kind in
        let is_cond = Types.equal_branch_kind kind Types.Cond in
        if is_cond then incr cond_branches;
        let wrong =
          Engine.step eng ~pc:r.Btrace.b_pc ~kind ~taken:r.Btrace.b_taken
            ~target:r.Btrace.b_target
        in
        if wrong then begin
          incr mispredicts;
          if is_cond then incr cond_mispredicts
        end;
        (match observe with
        | Some f -> f r ~taken_pred:(Engine.last_taken_pred eng) ~wrong
        | None -> ());
        match progress with
        | Some f when !branches mod progress_every = 0 ->
          f ~branches:!branches ~insns:!instructions
        | _ -> ()
      end
  done;
  {
    design;
    trace;
    instructions = !instructions;
    branches = !branches;
    cond_branches = !cond_branches;
    mispredicts = !mispredicts;
    cond_mispredicts = !cond_mispredicts;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Warmup checkpoints and time-sliced parallel replay, built on the flat
   whole-design snapshots: a quiesced pipeline (which a replay loop is
   between any two records — every branch commits immediately) checkpoints
   into one slab, and the reader's byte offset pins the stream position. *)

type checkpoint = {
  ck_slab : Cobra_util.Slab.t;
  ck_offset : int;
  ck_branches : int;
  ck_insns : int;
}

(* A source that consumes {e exactly} [branches] records from the reader.
   [run ~max_branches] is not suitable for checkpointing: it reads one
   record past the cap and drops it, so the reader would no longer sit on
   the boundary. *)
let capped_source rd ~branches =
  let taken = ref 0 in
  fun () ->
    if !taken >= branches then None
    else
      match Reader.next rd with
      | None -> None
      | Some r ->
        incr taken;
        Some r

let checkpoint pl rd ~branches ~insns =
  {
    ck_slab = Pipeline.snapshot pl;
    ck_offset = Reader.offset rd;
    ck_branches = branches;
    ck_insns = insns;
  }

let warmup ?deadline ~branches ~design ~trace pl rd =
  let res = run ?deadline ~design ~trace pl (capped_source rd ~branches) in
  (checkpoint pl rd ~branches:res.branches ~insns:res.instructions, res)

let restore pl rd ck =
  Pipeline.restore pl ck.ck_slab;
  Reader.seek rd ck.ck_offset

(* Compiled-engine checkpointing: the engine snapshots in the exact
   [Pipeline.snapshot] layout, so checkpoints interchange freely between
   the two engines of one design. *)

let checkpoint_compiled eng rd ~branches ~insns =
  {
    ck_slab = Engine.snapshot eng;
    ck_offset = Reader.offset rd;
    ck_branches = branches;
    ck_insns = insns;
  }

let warmup_compiled ?deadline ~branches ~design ~trace eng rd =
  let res = run_compiled ?deadline ~design ~trace eng (capped_source rd ~branches) in
  (checkpoint_compiled eng rd ~branches:res.branches ~insns:res.instructions, res)

let restore_compiled eng rd ck =
  Engine.restore eng ck.ck_slab;
  Reader.seek rd ck.ck_offset

let counters_equal a b =
  a.instructions = b.instructions
  && a.branches = b.branches
  && a.cond_branches = b.cond_branches
  && a.mispredicts = b.mispredicts
  && a.cond_mispredicts = b.cond_mispredicts

let sum_counters ~design ~trace ~elapsed_s rs =
  List.fold_left
    (fun acc r ->
      {
        acc with
        instructions = acc.instructions + r.instructions;
        branches = acc.branches + r.branches;
        cond_branches = acc.cond_branches + r.cond_branches;
        mispredicts = acc.mispredicts + r.mispredicts;
        cond_mispredicts = acc.cond_mispredicts + r.cond_mispredicts;
      })
    {
      design;
      trace;
      instructions = 0;
      branches = 0;
      cond_branches = 0;
      mispredicts = 0;
      cond_mispredicts = 0;
      elapsed_s;
    }
    rs

type sliced = {
  sl_total : result;
  sl_slices : result list;
  sl_serial : result list;
  sl_boundary_s : float;
  sl_parallel_s : float;
}

(* One replay simulator, either engine, behind a uniform driver so the
   sliced scaffolding (and serve's windowed sweeps) is written once. *)
type sim = {
  sim_run : source -> result;
  sim_checkpoint : Reader.t -> branches:int -> insns:int -> checkpoint;
  sim_restore : Reader.t -> checkpoint -> unit;
}

let make_sim ?deadline (engine : engine_kind) (d : Cobra_eval.Designs.t) ~trace =
  let design = d.Cobra_eval.Designs.name in
  match engine with
  | `Interpreted ->
    let pl = Cobra_eval.Designs.pipeline d in
    {
      sim_run = (fun src -> run ?deadline ~design ~trace pl src);
      sim_checkpoint = (fun rd ~branches ~insns -> checkpoint pl rd ~branches ~insns);
      sim_restore = (fun rd ck -> restore pl rd ck);
    }
  | `Compiled ->
    let eng = compiled d in
    {
      sim_run = (fun src -> run_compiled ?deadline ~design ~trace eng src);
      sim_checkpoint =
        (fun rd ~branches ~insns -> checkpoint_compiled eng rd ~branches ~insns);
      sim_restore = (fun rd ck -> restore_compiled eng rd ck);
    }

let run_sliced ?buffer_size ?jobs ?(slice_branches = 262_144) ?(engine = `Interpreted)
    (d : Cobra_eval.Designs.t) ~path =
  if slice_branches < 1 then invalid_arg "Replay.run_sliced: slice_branches < 1";
  let name = d.Cobra_eval.Designs.name in
  (* Pass 1 (serial): replay slice by slice, snapshotting each boundary as
     it is crossed. *)
  let t0 = Unix.gettimeofday () in
  let boundaries = ref [] and serial = ref [] in
  let sim = make_sim engine d ~trace:path in
  Reader.with_file ?buffer_size path (fun rd ->
      let cum_branches = ref 0 and cum_insns = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let ck = sim.sim_checkpoint rd ~branches:!cum_branches ~insns:!cum_insns in
        let r = sim.sim_run (capped_source rd ~branches:slice_branches) in
        if r.branches = 0 then continue_ := false
        else begin
          boundaries := ck :: !boundaries;
          serial := r :: !serial;
          cum_branches := !cum_branches + r.branches;
          cum_insns := !cum_insns + r.instructions;
          if r.branches < slice_branches then continue_ := false
        end
      done);
  let boundaries = List.rev !boundaries and serial = List.rev !serial in
  let boundary_s = Unix.gettimeofday () -. t0 in
  (* Pass 2 (parallel): each slice in its own domain with a fresh simulator
     and reader; predictor state is handed off via the boundary snapshot. *)
  let t1 = Unix.gettimeofday () in
  let outcomes =
    Cobra_runner.Pool.map ?jobs
      (List.map
         (fun ck () ->
           let sim = make_sim engine d ~trace:path in
           Reader.with_file ?buffer_size path (fun rd ->
               sim.sim_restore rd ck;
               sim.sim_run (capped_source rd ~branches:slice_branches)))
         boundaries)
  in
  let slices =
    List.mapi
      (fun i -> function
        | Ok r -> r
        | Error (e : Cobra_runner.Pool.error) ->
          failwith (Printf.sprintf "Replay.run_sliced: slice %d failed: %s" i e.message))
      outcomes
  in
  let parallel_s = Unix.gettimeofday () -. t1 in
  List.iteri
    (fun i (par, ser) ->
      if not (counters_equal par ser) then
        failwith
          (Printf.sprintf
             "Replay.run_sliced: slice %d diverged from the serial pass (parallel %d/%d \
              mispredicts/branches vs serial %d/%d)"
             i par.mispredicts par.branches ser.mispredicts ser.branches))
    (List.combine slices serial);
  {
    sl_total = sum_counters ~design:name ~trace:path ~elapsed_s:parallel_s slices;
    sl_slices = slices;
    sl_serial = serial;
    sl_boundary_s = boundary_s;
    sl_parallel_s = parallel_s;
  }

let run_design ?max_branches ?max_insns ?deadline ?buffer_size
    ?(engine = `Interpreted) (d : Cobra_eval.Designs.t) ~path =
  let name = d.Cobra_eval.Designs.name in
  match engine with
  | `Interpreted ->
    let pl = Cobra_eval.Designs.pipeline d in
    Reader.with_file ?buffer_size path (fun rd ->
        run ?max_branches ?max_insns ?deadline ~design:name ~trace:path pl (fun () ->
            Reader.next rd))
  | `Compiled ->
    let eng = compiled d in
    Reader.with_file ?buffer_size path (fun rd ->
        run_compiled ?max_branches ?max_insns ?deadline ~design:name ~trace:path eng
          (fun () -> Reader.next rd))

let run_design_with_stats ?max_branches ?max_insns ?deadline ?buffer_size ?(top = 20)
    (d : Cobra_eval.Designs.t) ~path =
  let pl = Cobra_eval.Designs.pipeline d in
  let coll =
    Cobra_stats.Collector.create ~interval_width:(Cobra_stats.Env.interval ()) pl
  in
  let insns_seen = ref 0 and mis_seen = ref 0 in
  let observe r ~taken_pred:_ ~wrong =
    insns_seen := !insns_seen + Btrace.insns r;
    if wrong then incr mis_seen;
    Cobra_stats.Collector.sample coll ~insns:!insns_seen ~cycles:0 ~mispredicts:!mis_seen
  in
  let res =
    Reader.with_file ?buffer_size path (fun rd ->
        run ?max_branches ?max_insns ?deadline ~observe
          ~design:d.Cobra_eval.Designs.name ~trace:path pl (fun () -> Reader.next rd))
  in
  Cobra_stats.Collector.flush coll ~insns:res.instructions ~cycles:0
    ~mispredicts:res.mispredicts;
  Cobra_stats.Collector.detach coll;
  let report =
    Cobra_stats.Collector.report ~design:res.design
      ~workload:(Filename.basename path)
      ~perf:(Cobra_uarch.Perf.counters (to_perf res))
      ~top coll
  in
  (res, report)
