type error = {
  job : int;
  attempts : int;
  message : string;
  backtrace : string;
}

let default_jobs () =
  Cobra_util.Env.int_var ~min:1 "COBRA_JOBS"
    ~default:(Domain.recommended_domain_count ())

let shielded f = try f () with _ -> ()

let run_one ~attempts ~on_start ~on_retry i thunk =
  shielded (fun () -> on_start i);
  let rec go attempt =
    match thunk () with
    | v -> Ok v
    | exception exn ->
      let backtrace = Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ()) in
      if attempt < attempts then begin
        shielded (fun () -> on_retry i ~attempt exn);
        go (attempt + 1)
      end
      else Error { job = i; attempts = attempt; message = Printexc.to_string exn; backtrace }
  in
  go 1

let map ?jobs ?(attempts = 1) ?(on_start = fun _ -> ()) ?(on_retry = fun _ ~attempt:_ _ -> ())
    ?(on_finish = fun _ ~ok:_ -> ()) thunks =
  if attempts < 1 then invalid_arg "Pool.map: attempts must be >= 1";
  if not (Printexc.backtrace_status ()) then Printexc.record_backtrace true;
  let arr = Array.of_list thunks in
  let n = Array.length arr in
  let jobs = max 1 (min (match jobs with Some j -> j | None -> default_jobs ()) n) in
  let results = Array.make n None in
  let finish i r =
    results.(i) <- Some r;
    shielded (fun () -> on_finish i ~ok:(Result.is_ok r))
  in
  if jobs <= 1 then
    for i = 0 to n - 1 do
      finish i (run_one ~attempts ~on_start ~on_retry i arr.(i))
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          finish i (run_one ~attempts ~on_start ~on_retry i arr.(i));
          loop ()
        end
      in
      loop ()
    in
    (* the calling domain is one of the workers *)
    let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned
  end;
  Array.to_list
    (Array.mapi
       (fun i r ->
         match r with
         | Some r -> r
         | None ->
           (* unreachable: every index is claimed exactly once *)
           Error { job = i; attempts = 0; message = "job never ran"; backtrace = "" })
       results)
