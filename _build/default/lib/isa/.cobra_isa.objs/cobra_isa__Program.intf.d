lib/isa/program.mli: Insn
