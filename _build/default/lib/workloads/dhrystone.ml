open Cobra_isa
open Program

let description = "Dhrystone-like: small procedures, record copies, string compare"

(* registers *)
let a0 = 10 (* argument / return value *)
let a1 = 11
let t0 = 12
let t1 = 13
let t2 = 14
let glob = 15 (* global record base *)
let iter = 28

(* Memory map (word addresses): two 8-word records and two 12-char strings. *)
let rec1 = 0x100
let rec2 = 0x120
let str1 = 0x140
let str2 = 0x160

let save_ra = [ sw Insn.ra Insn.sp 0; addi Insn.sp Insn.sp 1 ]
let restore_ra = [ addi Insn.sp Insn.sp (-1); lw Insn.ra Insn.sp 0 ]

let program =
  assemble
    ([ li glob rec1; li iter 0; j "main_loop" ]
    (* proc_copy: copy 8-word record rec1 -> rec2 *)
    @ [ label "proc_copy" ]
    @ List.concat
        (List.init 8 (fun i -> [ lw t0 glob i; sw t0 a0 i ]))
    @ [ addi t1 glob 3; lw t0 t1 0; addi t0 t0 1; sw t0 t1 0; ret ]
    (* proc_compare: compare two 12-char strings, return 1 if equal *)
    @ [
        label "proc_compare";
        li t0 0;
        label "cmp_loop";
        add t1 a0 t0;
        lw t1 t1 0;
        add t2 a1 t0;
        lw t2 t2 0;
        bne t1 t2 "cmp_differ";
        addi t0 t0 1;
        slti t1 t0 12;
        bne t1 0 "cmp_loop";
        li a0 1;
        ret;
        label "cmp_differ";
        li a0 0;
        ret;
      ]
    (* proc_classify: nested conditionals on a small integer *)
    @ [
        label "proc_classify";
        slti t0 a0 10;
        beq t0 0 "cls_big";
        andi t0 a0 1;
        beq t0 0 "cls_even";
        addi a0 a0 3;
        ret;
        label "cls_even";
        addi a0 a0 1;
        ret;
        label "cls_big";
        srli a0 a0 1;
        ret;
      ]
    (* proc_chain: calls classify twice (call depth 2) *)
    @ [ label "proc_chain" ]
    @ save_ra
    @ [ call "proc_classify"; addi a0 a0 5; call "proc_classify" ]
    @ restore_ra @ [ ret ]
    (* main loop *)
    @ [ label "main_loop" ]
    @ save_ra
    @ [ li a0 rec2; call "proc_copy" ]
    @ [ li a0 str1; li a1 str2; call "proc_compare"; beq a0 0 "skip_inc"; addi iter iter 1;
        label "skip_inc" ]
    @ [ andi a0 iter 15; call "proc_chain" ]
    @ restore_ra
    @ [ addi iter iter 1; j "main_loop" ])

let stream () =
  let init m =
    (* identical strings: the comparison loop runs to completion *)
    for i = 0 to 11 do
      Machine.poke m ~addr:(str1 + i) (65 + i);
      Machine.poke m ~addr:(str2 + i) (65 + i)
    done;
    for i = 0 to 7 do
      Machine.poke m ~addr:(rec1 + i) (i * 7)
    done
  in
  Gen.stream_of_program ~init program
