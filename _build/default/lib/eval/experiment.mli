(** Experiment runner: a design x workload x core-configuration grid.

    Each run elaborates a fresh pipeline (untrained components) and a fresh
    core, so results are independent and deterministic. *)

type result = {
  design : string;
  workload : string;
  perf : Cobra_uarch.Perf.t;
}

val default_insns : int
(** Instructions per run; override with the [COBRA_INSNS] environment
    variable (the bench harness honours it). *)

val run :
  ?insns:int ->
  ?config:Cobra_uarch.Config.t ->
  ?pipeline_config:Cobra.Pipeline.config ->
  ?transform:(Cobra_isa.Trace.stream -> Cobra_isa.Trace.stream) ->
  Designs.t ->
  Cobra_workloads.Suite.entry ->
  result

val run_matrix :
  ?insns:int ->
  ?config:Cobra_uarch.Config.t ->
  Designs.t list ->
  Cobra_workloads.Suite.entry list ->
  result list
(** Results grouped workload-major (all designs for workload 1, then
    workload 2, ...). *)

val find : result list -> design:string -> workload:string -> result
(** Raises [Not_found]. *)
