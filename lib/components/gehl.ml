module Bitpack = Cobra_util.Bitpack
module Counter = Cobra_util.Counter
module Hashing = Cobra_util.Hashing
module Slab = Cobra_util.Slab
open Cobra

type config = {
  name : string;
  latency : int;
  table_bits : int;
  counter_bits : int;
  history_lengths : int list;
  threshold : int;
  fetch_width : int;
}

let default ~name =
  {
    name;
    latency = 3;
    table_bits = 10;
    counter_bits = 4;
    history_lengths = [ 0; 2; 4; 8; 16; 32 ];
    threshold = 6;
    fetch_width = 4;
  }

let storage_bits cfg =
  List.length cfg.history_lengths * (1 lsl cfg.table_bits) * cfg.counter_bits

(* Metadata: per slot, each table's counter biased into unsigned range. *)
let slot_layout cfg = List.map (fun _ -> cfg.counter_bits + 1) cfg.history_lengths
let meta_layout cfg = List.concat_map (fun _ -> slot_layout cfg) (List.init cfg.fetch_width Fun.id)

let make cfg =
  let ntables = List.length cfg.history_lengths in
  if ntables < 1 then invalid_arg (cfg.name ^ ": no tables");
  let lengths = Array.of_list cfg.history_lengths in
  (* slab layout: table t's entry i (signed counter) at cell t*2^table_bits + i *)
  let bank_size = 1 lsl cfg.table_bits in
  let state = Slab.create (ntables * bank_size) in
  let bias = 1 lsl cfg.counter_bits in
  let index (ctx : Context.t) ~slot ~table =
    let pc_part = Hashing.pc_index ~pc:(Context.slot_pc ctx slot) ~bits:cfg.table_bits in
    if lengths.(table) = 0 then pc_part
    else
      pc_part
      lxor Hashing.folded_history ctx.ghist ~len:lengths.(table) ~bits:cfg.table_bits
      lxor Hashing.fold_int (Hashing.mix2 table 41) ~width:62 ~bits:cfg.table_bits
  in
  let meta_bits = Bitpack.width_of (meta_layout cfg) in
  let predict (ctx : Context.t) ~pred_in =
    let base = match pred_in with [ p ] -> p | _ -> invalid_arg (cfg.name ^ ": one predict_in") in
    let fields = ref [] in
    let pred =
      Array.init cfg.fetch_width (fun slot ->
          let sum = ref 0 in
          (* ascending table order: update's List.iteri pairs field [t] with
             bank [t], so the pack order must match *)
          for t = 0 to ntables - 1 do
            let c = Slab.get state ((t * bank_size) + index ctx ~slot ~table:t) in
            sum := !sum + c;
            fields := (c + bias, cfg.counter_bits + 1) :: !fields
          done;
          if Types.unconditional_in base slot then Types.empty_opinion
          else { Types.empty_opinion with o_taken = Some (!sum >= 0) })
    in
    (pred, Bitpack.pack ~width:meta_bits (List.rev !fields))
  in
  let update (ev : Component.event) =
    let fields = Bitpack.unpack ev.meta (meta_layout cfg) in
    let rec per_slot slot = function
      | [] -> ()
      | rest ->
        let counters = List.filteri (fun i _ -> i < ntables) rest in
        let rest' = List.filteri (fun i _ -> i >= ntables) rest in
        let (r : Types.resolved) = ev.slots.(slot) in
        if Types.cond_branch r then begin
          let counters = List.map (fun c -> c - bias) counters in
          let sum = List.fold_left ( + ) 0 counters in
          let predicted = sum >= 0 in
          if predicted <> r.r_taken || abs sum <= cfg.threshold then
            List.iteri
              (fun t c ->
                Slab.set state
                  ((t * bank_size) + index ev.ctx ~slot ~table:t)
                  (Counter.update_signed ~bits:cfg.counter_bits c
                     ~dir:(if r.r_taken then 1 else -1)))
              counters
        end;
        per_slot (slot + 1) rest'
    in
    per_slot 0 fields
  in
  Component.make ~name:cfg.name ~family:Component.Perceptron ~latency:cfg.latency ~meta_bits
    ~storage:(Storage.make ~sram_bits:(storage_bits cfg) ())
    ~state ~predict ~update ()
