let lock = Mutex.create ()
let sink : (Report.t -> unit) option ref = ref None

let set s =
  Mutex.lock lock;
  sink := s;
  Mutex.unlock lock

let current () =
  Mutex.lock lock;
  let s = !sink in
  Mutex.unlock lock;
  s

(* The callback runs outside the lock: it may itself take locks (e.g. the
   runner's progress mutex) and must not deadlock against [set]. *)
let publish r = match current () with Some f -> f r | None -> ()
