(** Report file export. *)

val write : dir:string -> Report.t -> string * string
(** Write [<design>__<workload>.json] and [.csv] into [dir] (created when
    missing), atomically via temp-file + rename — safe under the parallel
    runner. Returns [(json_path, csv_path)]. *)

val basename : Report.t -> string
(** The sanitized [<design>__<workload>] stem. *)
