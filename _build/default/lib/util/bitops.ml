let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  if not (is_power_of_two n) then invalid_arg "Bitops.log2_exact: not a power of two";
  let rec loop acc n = if n <= 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

let bits_needed n =
  if n < 1 then invalid_arg "Bitops.bits_needed: n < 1";
  let rec loop acc v = if v >= n then acc else loop (acc + 1) (v lsl 1) in
  loop 0 1
