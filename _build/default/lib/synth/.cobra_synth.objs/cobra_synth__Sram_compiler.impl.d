lib/synth/sram_compiler.ml: Tech
