(** Buffered {!Btrace} encoder plus the workload-to-trace exporter.

    The exporter pulls a workload's retired-path instruction stream,
    squeezes the non-branch instructions into per-record gap counts, and
    writes the branch records straight through the buffered encoder — the
    whole export is streaming, so every existing BRISC kernel doubles as a
    trace fixture of any size in constant memory. *)

type t

val create : ?format:Btrace.format -> string -> t
(** Opens [path] for writing (truncating). [format] defaults to
    {!Btrace.Binary}; the text form starts with {!Btrace.text_header}. *)

val add : t -> Btrace.record -> unit
(** Raises [Invalid_argument] on an invalid record (negative pc/gap). *)

val added : t -> int
val close : t -> unit
(** Flushes and closes; idempotent. *)

val with_file : ?format:Btrace.format -> string -> (t -> 'a) -> 'a
val save : ?format:Btrace.format -> string -> Btrace.record list -> unit

val export_stream :
  ?format:Btrace.format ->
  ?max_branches:int ->
  ?max_insns:int ->
  path:string ->
  Cobra_isa.Trace.stream ->
  int * int
(** Stream events into a branch trace at [path] until either bound is hit
    (at least one must be given — workload streams are infinite). Returns
    [(branches, instructions)] where [instructions] counts the stream
    through the {e last exported branch} — trailing non-branch events are
    not representable in the format and are dropped, so the pair is exactly
    what the trace itself replays to. *)

val export_workload :
  ?format:Btrace.format ->
  ?max_branches:int ->
  ?max_insns:int ->
  path:string ->
  Cobra_workloads.Suite.entry ->
  int * int
(** {!export_stream} over a fresh stream of the workload. *)
