(* Benchmark harness: regenerates every table and figure of the paper
   (Tables I-III, Figs 7-10, the Section I/VI experiments) from this
   repository's implementation, then runs Bechamel microbenchmarks of the
   framework itself.

   Scale with COBRA_INSNS (default 100_000 instructions per run) and
   COBRA_JOBS (parallel simulation workers; 1 reproduces the serial
   harness). Pass section names as arguments to run a subset, e.g.
   [dune exec bench/main.exe -- table_1 figure_10]; [--list] prints the
   valid section names. *)

open Cobra_eval

let banner name =
  Printf.printf "\n================ %s ================\n%!" name

let timed label f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "[%s took %.1f s]\n%!" label (Unix.gettimeofday () -. t0);
  r

(* --- tables -------------------------------------------------------------- *)

let table_1 () = print_string (Tables.table_1 ())
let table_2 () = print_string (Tables.table_2 ())
let table_3 () = print_string (Tables.table_3 ())

let table_attribution () =
  print_string
    (timed "table_attribution" (fun () -> Tables.table_attribution ()))

(* --- figures ------------------------------------------------------------- *)

let figure_7 () = print_string (Figures.figure_7 ())
let figure_8 () = print_string (Figures.figure_8 ())
let figure_9 () = print_string (Figures.figure_9 ())

let figure_10 () =
  let results =
    timed "figure_10 runs" (fun () ->
        Experiment.run_matrix Designs.all Cobra_workloads.Suite.specint)
  in
  print_string (Figures.figure_10 results);
  Printf.printf "\npaper shape check: %s\n" (List.assoc "Fig10" Reference.paper_claims)

(* --- ablations ------------------------------------------------------------ *)

let ablation o =
  let { Ablations.id; paper_claim; measured; report } = o in
  Printf.printf "%s\n" report;
  Printf.printf "paper [%s]: %s\n" id paper_claim;
  Printf.printf "measured:   %s\n" measured

let ablation_serialized_fetch () =
  ablation (timed "serialized_fetch" (fun () -> Ablations.serialized_fetch ()))

let ablation_tage_latency () =
  ablation (timed "tage_latency" (fun () -> Ablations.tage_latency ()))

let ablation_history_repair () =
  ablation (timed "history_repair" (fun () -> Ablations.history_repair ()))

let ablation_sfb () =
  ablation (timed "sfb" (fun () -> Ablations.short_forward_branch ()))

(* --- design-space sweeps (extensions) ----------------------------------------- *)

let sweep name f () = print_string (timed name f)

let sweep_storage = sweep "tage_storage_sweep" (fun () -> Sweeps.tage_storage_sweep ())
let sweep_ubtb = sweep "ubtb_value" (fun () -> Sweeps.ubtb_value ())
let sweep_fetch_width = sweep "fetch_width_sweep" (fun () -> Sweeps.fetch_width_sweep ())
let sweep_indexing = sweep "indexing_ablation" (fun () -> Sweeps.indexing_ablation ())
let sweep_ittage = sweep "indirect_predictor" (fun () -> Sweeps.indirect_predictor ())
let sweep_ras = sweep "ras_repair" (fun () -> Sweeps.ras_repair ())
let sweep_sc = sweep "sc_value" (fun () -> Sweeps.statistical_corrector_value ())
let sweep_core_size = sweep "core_size" (fun () -> Sweeps.core_size ())
let sweep_families = sweep "cbp_families" (fun () -> Sweeps.gehl_vs_tage ())

let software_vs_hardware () =
  print_string (timed "software_vs_hardware" (fun () -> Software_model.comparison_report ()))

(* --- energy (extension) ----------------------------------------------------- *)

let energy () =
  List.iter
    (fun (d : Designs.t) ->
      let pl = Designs.pipeline d in
      let e = Cobra_synth.Energy.of_pipeline pl in
      Printf.printf "%-8s predict %.1f pJ, update %.1f pJ, ~%.2f nJ/kilo-instruction\n"
        d.Designs.name e.Cobra_synth.Energy.predict_pj e.Cobra_synth.Energy.update_pj
        (Cobra_synth.Energy.per_kilo_instruction pl ~packets_per_ki:400.0))
    Designs.all

(* --- bechamel microbenchmarks ------------------------------------------------ *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let predict_test (d : Designs.t) =
    let pl = Designs.pipeline d in
    let pc = ref 0x1000 in
    Test.make ~name:(Printf.sprintf "predict/%s" d.Designs.name)
      (Staged.stage (fun () ->
           let tok = Cobra.Pipeline.predict pl ~pc:!pc ~max_len:4 in
           pc := (!pc + 16) land 0xFFFFF;
           Cobra.Pipeline.squash_from pl tok))
  in
  let elaborate_test (d : Designs.t) =
    Test.make ~name:(Printf.sprintf "elaborate/%s" d.Designs.name)
      (Staged.stage (fun () -> ignore (Designs.pipeline d)))
  in
  let tests =
    List.map predict_test Designs.all @ List.map elaborate_test Designs.all
  in
  let test = Test.make_grouped ~name:"cobra" ~fmt:"%s %s" tests in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
    in
    let raw = Benchmark.all cfg instances test in
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = benchmark () in
  List.iter
    (fun tbl ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name)
        (List.sort (fun (a, _) (b, _) -> String.compare a b) rows))
    results

(* --- main ---------------------------------------------------------------------- *)

let sections =
  [
    ("table_1", table_1);
    ("table_2", table_2);
    ("table_3", table_3);
    ("table_attribution", table_attribution);
    ("figure_7", figure_7);
    ("figure_8", figure_8);
    ("figure_9", figure_9);
    ("figure_10", figure_10);
    ("ablation_serialized_fetch", ablation_serialized_fetch);
    ("ablation_tage_latency", ablation_tage_latency);
    ("ablation_history_repair", ablation_history_repair);
    ("ablation_sfb", ablation_sfb);
    ("sweep_storage", sweep_storage);
    ("sweep_ubtb", sweep_ubtb);
    ("sweep_fetch_width", sweep_fetch_width);
    ("sweep_indexing", sweep_indexing);
    ("sweep_ittage", sweep_ittage);
    ("sweep_ras", sweep_ras);
    ("sweep_sc", sweep_sc);
    ("sweep_core_size", sweep_core_size);
    ("sweep_families", sweep_families);
    ("software_vs_hardware", software_vs_hardware);
    ("energy", energy);
    ("bechamel", bechamel);
  ]

let section_names = List.map fst sections

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.exists (fun a -> a = "--list" || a = "-l") args then begin
    List.iter print_endline section_names;
    exit 0
  end;
  (match List.filter (fun a -> not (List.mem_assoc a sections)) args with
  | [] -> ()
  | unknown ->
    Printf.eprintf "error: unknown section%s %s\nvalid sections:\n%s\n"
      (if List.length unknown = 1 then "" else "s")
      (String.concat ", " (List.map (Printf.sprintf "%S") unknown))
      (String.concat "\n" (List.map (fun n -> "  " ^ n) section_names));
    exit 2);
  let enabled name = args = [] || List.mem name args in
  Printf.printf "COBRA benchmark harness (insns per run: %d)\n" Experiment.default_insns;
  List.iter
    (fun (name, f) ->
      if enabled name then begin
        banner name;
        f ()
      end)
    sections
