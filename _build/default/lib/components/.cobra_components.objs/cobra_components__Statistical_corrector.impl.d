lib/components/statistical_corrector.ml: Array Cobra Cobra_util Component Context Fun List Storage Types
