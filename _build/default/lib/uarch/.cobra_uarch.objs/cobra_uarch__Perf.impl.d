lib/uarch/perf.ml: Cobra_util Format
