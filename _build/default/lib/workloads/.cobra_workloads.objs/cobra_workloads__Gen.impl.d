lib/workloads/gen.ml: Cobra_isa Machine Program
