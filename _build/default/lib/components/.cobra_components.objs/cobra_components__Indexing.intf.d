lib/components/indexing.mli: Cobra
