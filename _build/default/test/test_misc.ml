(* Focused unit tests for the smaller supporting modules: text rendering,
   bit helpers, performance-counter math, core configuration, machine
   instruction coverage and indexing descriptions. *)

open Cobra_util

let check = Alcotest.check

(* --- Bitops --------------------------------------------------------------- *)

let test_bitops () =
  check Alcotest.bool "power of two" true (Bitops.is_power_of_two 64);
  check Alcotest.bool "not power of two" false (Bitops.is_power_of_two 48);
  check Alcotest.bool "zero" false (Bitops.is_power_of_two 0);
  check Alcotest.int "log2" 6 (Bitops.log2_exact 64);
  Alcotest.check_raises "log2 of non-power"
    (Invalid_argument "Bitops.log2_exact: not a power of two") (fun () ->
      ignore (Bitops.log2_exact 48));
  check Alcotest.int "bits for 1" 0 (Bitops.bits_needed 1);
  check Alcotest.int "bits for 2" 1 (Bitops.bits_needed 2);
  check Alcotest.int "bits for 5" 3 (Bitops.bits_needed 5)

(* --- Text rendering -------------------------------------------------------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  loop 0

let test_table_rendering () =
  let t =
    Text_render.table ~title:"T" ~header:[ "a"; "value" ]
      ~rows:[ [ "row1"; "1.50" ]; [ "row2"; "22.00" ] ]
      ()
  in
  check Alcotest.bool "title" true (contains t "T");
  check Alcotest.bool "numeric right-aligned" true (contains t " 1.50 |");
  check Alcotest.bool "separators" true (contains t "+==")

let test_table_ragged_rows () =
  (* rows shorter than the header must not raise *)
  let t = Text_render.table ~header:[ "a"; "b"; "c" ] ~rows:[ [ "x" ] ] () in
  check Alcotest.bool "rendered" true (String.length t > 0)

let test_bar_chart () =
  let c = Text_render.bar_chart ~title:"chart" ~unit:"u" [ ("x", 1.0); ("y", 2.0) ] in
  check Alcotest.bool "labels" true (contains c "x" && contains c "y");
  check Alcotest.bool "values" true (contains c "2.000")

let test_bar_chart_all_zero () =
  let c = Text_render.bar_chart ~title:"z" ~unit:"u" [ ("x", 0.0) ] in
  check Alcotest.bool "no crash on zero max" true (contains c "0.000")

let test_grouped_chart () =
  let c =
    Text_render.grouped_bar_chart ~title:"g" ~unit:"u" ~series:[ "s1"; "s2" ]
      [ ("bench", [ 1.0; 2.0 ]) ]
  in
  check Alcotest.bool "series names" true (contains c "s1" && contains c "s2")

let test_stacked_rows () =
  let c =
    Text_render.stacked_rows ~title:"s" ~unit:"u" ~parts:[ "p1"; "p2" ]
      [ ("d", [ 3.0; 1.0 ]) ]
  in
  check Alcotest.bool "percentages" true (contains c "75.0%")

(* --- Perf math ---------------------------------------------------------------- *)

let test_perf_math () =
  let open Cobra_uarch in
  let p = Perf.create () in
  p.Perf.cycles <- 1000;
  p.Perf.instructions <- 2500;
  p.Perf.branches <- 500;
  p.Perf.mispredicts <- 50;
  check (Alcotest.float 1e-9) "ipc" 2.5 (Perf.ipc p);
  check (Alcotest.float 1e-9) "mpki" 20.0 (Perf.mpki p);
  check (Alcotest.float 1e-9) "accuracy" 0.9 (Perf.branch_accuracy p)

let test_perf_empty () =
  let open Cobra_uarch in
  let p = Perf.create () in
  check (Alcotest.float 1e-9) "ipc 0" 0.0 (Perf.ipc p);
  check (Alcotest.float 1e-9) "accuracy 1 with no branches" 1.0 (Perf.branch_accuracy p)

(* --- Config rows ------------------------------------------------------------------ *)

let test_config_rows () =
  let rows = Cobra_uarch.Config.rows Cobra_uarch.Config.default in
  let text = String.concat "\n" (List.map (fun (a, b) -> a ^ " " ^ b) rows) in
  check Alcotest.bool "fetch width" true (contains text "16-byte wide fetch");
  check Alcotest.bool "rob" true (contains text "128-entry ROB");
  check Alcotest.bool "pipes" true (contains text "8 pipelines (4 ALU, 2 MEM, 2 FP)")

(* --- Machine instruction coverage --------------------------------------------------- *)

let run lines =
  let m = Cobra_isa.Machine.create (Cobra_isa.Program.assemble lines) in
  ignore (Cobra_isa.Machine.run m ~max_insns:100);
  m

let test_shift_and_logic_ops () =
  let open Cobra_isa.Program in
  let m =
    run
      [ li 3 0b1100; li 4 2; sll 5 3 4; srl 6 3 4; and_ 7 3 4; or_ 8 3 4; xor 9 3 4;
        slt 10 4 3; halt ]
  in
  let reg = Cobra_isa.Machine.reg m in
  check Alcotest.int "sll" 0b110000 (reg 5);
  check Alcotest.int "srl" 0b11 (reg 6);
  check Alcotest.int "and" 0 (reg 7);
  check Alcotest.int "or" 0b1110 (reg 8);
  check Alcotest.int "xor" 0b1110 (reg 9);
  check Alcotest.int "slt" 1 (reg 10)

let test_fma_semantics () =
  let open Cobra_isa.Program in
  let m = run [ li 3 4; li 5 6; li 7 10; fma 7 3 5; halt ] in
  (* rd += rs1*rs2 *)
  check Alcotest.int "fma" 34 (Cobra_isa.Machine.reg m 7)

let test_blt_bge () =
  let open Cobra_isa.Program in
  let m =
    run
      [ li 3 (-5); li 4 5; li 9 0; blt 3 4 "a"; addi 9 9 100; label "a"; addi 9 9 1;
        bge 3 4 "b"; addi 9 9 10; label "b"; halt ]
  in
  check Alcotest.int "blt taken, bge not taken" 11 (Cobra_isa.Machine.reg m 9)

let test_x0_is_hardwired_zero () =
  let open Cobra_isa.Program in
  let m = run [ li 0 42; addi 0 0 7; halt ] in
  check Alcotest.int "x0 stays zero" 0 (Cobra_isa.Machine.reg m 0)

let test_machine_leaves_program_halts () =
  (* running off the end of the code halts rather than raising *)
  let open Cobra_isa.Program in
  let m = Cobra_isa.Machine.create (assemble [ nop; nop ]) in
  let events = Cobra_isa.Machine.run m ~max_insns:10 in
  check Alcotest.int "two events then halt" 2 (List.length events);
  check Alcotest.bool "halted" true (Cobra_isa.Machine.halted m)

(* --- Indexing description ------------------------------------------------------------ *)

let test_indexing_describe () =
  let open Cobra_components.Indexing in
  check Alcotest.string "pc" "pc" (describe Pc);
  check Alcotest.string "hash" "hash(pc^ghist[8])" (describe (Hash [ Pc; Ghist 8 ]));
  check Alcotest.string "phist" "phist[6]" (describe (Phist 6));
  check Alcotest.string "lhist" "lhist[4]" (describe (Lhist 4))

(* --- Storage arithmetic ---------------------------------------------------------------- *)

let test_storage_arithmetic () =
  let open Cobra in
  let a = Storage.make ~sram_bits:8192 ~flop_bits:64 ~logic_gates:100 () in
  let b = Storage.make ~sram_bits:8192 () in
  let s = Storage.add a b in
  check Alcotest.int "sram adds" 16384 s.Storage.sram_bits;
  check Alcotest.int "total bits" (16384 + 64) (Storage.total_bits s);
  check (Alcotest.float 1e-9) "kb" 2.0 (Storage.kilobytes (Storage.scale b 2));
  Alcotest.check_raises "negative rejected" (Invalid_argument "Storage.make: negative amount")
    (fun () -> ignore (Storage.make ~sram_bits:(-1) ()))

let test_component_label () =
  let open Cobra in
  let c =
    Component.make ~name:"X" ~family:Component.Static ~latency:2 ~meta_bits:0
      ~storage:Storage.zero
      ~predict:(fun _ ~pred_in:_ -> (Types.no_prediction ~width:4, Cobra_util.Bits.zero 0))
      ()
  in
  check Alcotest.string "paper notation" "X_2" (Component.label c);
  Alcotest.check_raises "latency 0 rejected"
    (Invalid_argument "Component.make Y: latency 0 < 1 (histories arrive at Fetch-1)")
    (fun () ->
      ignore
        (Component.make ~name:"Y" ~family:Component.Static ~latency:0 ~meta_bits:0
           ~storage:Cobra.Storage.zero
           ~predict:(fun _ ~pred_in:_ ->
             (Cobra.Types.no_prediction ~width:4, Cobra_util.Bits.zero 0))
           ()))

let () =
  Alcotest.run "cobra_misc"
    [
      ("bitops", [ Alcotest.test_case "all" `Quick test_bitops ]);
      ( "text_render",
        [
          Alcotest.test_case "table" `Quick test_table_rendering;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
          Alcotest.test_case "bar chart" `Quick test_bar_chart;
          Alcotest.test_case "zero max" `Quick test_bar_chart_all_zero;
          Alcotest.test_case "grouped" `Quick test_grouped_chart;
          Alcotest.test_case "stacked" `Quick test_stacked_rows;
        ] );
      ( "perf",
        [
          Alcotest.test_case "math" `Quick test_perf_math;
          Alcotest.test_case "empty" `Quick test_perf_empty;
        ] );
      ("config", [ Alcotest.test_case "rows" `Quick test_config_rows ]);
      ( "machine coverage",
        [
          Alcotest.test_case "shifts and logic" `Quick test_shift_and_logic_ops;
          Alcotest.test_case "fma" `Quick test_fma_semantics;
          Alcotest.test_case "blt/bge" `Quick test_blt_bge;
          Alcotest.test_case "x0 hardwired" `Quick test_x0_is_hardwired_zero;
          Alcotest.test_case "off-the-end halts" `Quick test_machine_leaves_program_halts;
        ] );
      ("indexing", [ Alcotest.test_case "describe" `Quick test_indexing_describe ]);
      ( "storage/component",
        [
          Alcotest.test_case "storage arithmetic" `Quick test_storage_arithmetic;
          Alcotest.test_case "component label" `Quick test_component_label;
        ] );
    ]
