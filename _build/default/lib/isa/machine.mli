(** BRISC interpreter producing dynamic traces.

    Executes an assembled {!Program.t} architecturally (registers + a sparse
    word-addressed memory) and emits one {!Trace.event} per retired
    instruction. This is the execution-driven stand-in for the paper's
    FPGA-hosted SPEC runs: branch directions and memory addresses come from
    real program state, not from a statistical model. *)

type t

val create : ?entry:string -> Program.t -> t
(** Fresh machine: PC at the program base (or the [entry] label), registers
    zero, stack pointer preset, memory empty. *)

val pc : t -> int
val halted : t -> bool
val reg : t -> Insn.reg -> int
val poke : t -> addr:int -> int -> unit
(** Pre-load a memory word (workload data initialisation). *)

val peek : t -> addr:int -> int

val step : t -> Trace.event option
(** Execute one instruction; [None] once halted (or when the PC leaves the
    program, which halts the machine). *)

val stream : t -> Trace.stream
(** The machine as an event stream. *)

val run : t -> max_insns:int -> Trace.event list
(** Convenience for tests. *)

val static_decode : Program.t -> pc:int -> Trace.event option
(** Decode the instruction at [pc] {e without} architectural state — what a
    fetch unit sees on the wrong path: class, operand registers and static
    branch kind/target, but no direction and no dynamic (indirect) target.
    [None] outside the program image. The host core uses this to fetch real
    wrong-path instructions instead of opaque placeholders. *)
