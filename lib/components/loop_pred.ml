module Bitpack = Cobra_util.Bitpack
module Bitops = Cobra_util.Bitops
module Hashing = Cobra_util.Hashing
module Slab = Cobra_util.Slab
open Cobra

type config = {
  name : string;
  latency : int;
  entries : int;
  tag_bits : int;
  count_bits : int;
  conf_bits : int;
  conf_threshold : int;
  fetch_width : int;
}

let default ~name =
  {
    name;
    latency = 3;
    entries = 256;
    tag_bits = 10;
    count_bits = 10;
    conf_bits = 3;
    conf_threshold = 4;
    fetch_width = 4;
  }

(* Metadata layout, per slot: hit(1), predict-time c_count, offered a
   prediction(1), predicted direction(1). *)
let slot_layout cfg = [ 1; cfg.count_bits; 1; 1 ]
let meta_layout cfg = List.concat_map (fun _ -> slot_layout cfg) (List.init cfg.fetch_width Fun.id)

let make cfg =
  if not (Bitops.is_power_of_two cfg.entries) then
    invalid_arg (cfg.name ^ ": entries must be a power of two");
  let index_bits = Bitops.log2_exact cfg.entries in
  (* slab layout: entry i at stride 6 — [6i]=valid, [+1]=tag,
     [+2]=p_count (learned trip count; 0 = unknown), [+3]=c_count
     (speculative iterations since last exit), [+4]=conf, [+5]=dir (the
     repeated body direction, 1 = taken) *)
  let state = Slab.create (cfg.entries * 6) in
  let index pc = Hashing.pc_index ~pc ~bits:index_bits in
  let tag_of pc = Hashing.fold_int (Hashing.mix2 (Hashing.pc_bits pc) 3) ~width:62 ~bits:cfg.tag_bits in
  let e_valid off = Slab.unsafe_get state off = 1 in
  let e_tag off = Slab.unsafe_get state (off + 1) in
  let e_p_count off = Slab.unsafe_get state (off + 2) in
  let e_c_count off = Slab.unsafe_get state (off + 3) in
  let e_conf off = Slab.unsafe_get state (off + 4) in
  let e_dir off = Slab.unsafe_get state (off + 5) = 1 in
  let set_p_count off v = Slab.unsafe_set state (off + 2) v in
  let set_c_count off v = Slab.unsafe_set state (off + 3) v in
  let set_conf off v = Slab.unsafe_set state (off + 4) v in
  let set_dir off b = Slab.unsafe_set state (off + 5) (if b then 1 else 0) in
  let lookup pc =
    let off = 6 * index pc in
    if e_valid off && e_tag off = tag_of pc then Some off else None
  in
  let count_max = (1 lsl cfg.count_bits) - 1 in
  let conf_max = (1 lsl cfg.conf_bits) - 1 in
  let meta_bits = Bitpack.width_of (meta_layout cfg) in
  let packer = Bitpack.Packer.create ~width:meta_bits in
  let cursor = Bitpack.Cursor.create () in
  let predict (ctx : Context.t) ~pred_in:_ =
    let pred = Types.no_prediction ~width:cfg.fetch_width in
    let live = Context.live_bound ctx cfg.fetch_width in
    for slot = 0 to cfg.fetch_width - 1 do
      let hit, c, pv, pd =
        match (if slot < live then lookup (Context.slot_pc ctx slot) else None) with
        | Some off ->
          if e_conf off >= cfg.conf_threshold && e_p_count off > 0 then begin
            let taken =
              if e_c_count off >= e_p_count off then not (e_dir off) else e_dir off
            in
            pred.(slot) <- Types.direction_hint ~taken;
            (1, e_c_count off, 1, if taken then 1 else 0)
          end
          else (1, e_c_count off, 0, 0)
        | None -> (0, 0, 0, 0)
      in
      Bitpack.Packer.add packer hit ~bits:1;
      Bitpack.Packer.add packer c ~bits:cfg.count_bits;
      Bitpack.Packer.add packer pv ~bits:1;
      Bitpack.Packer.add packer pd ~bits:1
    done;
    (pred, Bitpack.Packer.finish packer)
  in
  (* Scratch decode of the per-slot metadata, refilled at the top of each
     event; the handlers need random access, so cursor reads land in these
     preallocated arrays. pv/pd are predict-time outputs no handler reads. *)
  let m_hit = Array.make cfg.fetch_width false in
  let m_count = Array.make cfg.fetch_width 0 in
  let decode_meta (ev : Component.event) =
    Bitpack.Cursor.reset cursor ev.meta;
    for slot = 0 to cfg.fetch_width - 1 do
      m_hit.(slot) <- Bitpack.Cursor.take cursor ~bits:1 = 1;
      m_count.(slot) <- Bitpack.Cursor.take cursor ~bits:cfg.count_bits;
      Bitpack.Cursor.skip cursor ~bits:2
    done
  in
  let entry_for (ev : Component.event) slot = lookup (Context.slot_pc ev.ctx slot) in
  (* Speculative per-slot iteration counting when the packet proceeds. *)
  let fire (ev : Component.event) =
    decode_meta ev;
    for slot = 0 to cfg.fetch_width - 1 do
      if m_hit.(slot) then
        match entry_for ev slot with
        | Some off ->
          let (r : Types.resolved) = ev.slots.(slot) in
          if Types.cond_branch r then
            if r.r_taken = e_dir off then set_c_count off (min count_max (e_c_count off + 1))
            else set_c_count off 0
        | None -> ()
    done
  in
  let restore_slot ev slot =
    if m_hit.(slot) then
      match entry_for ev slot with Some off -> set_c_count off m_count.(slot) | None -> ()
  in
  let repair (ev : Component.event) =
    decode_meta ev;
    for slot = 0 to cfg.fetch_width - 1 do
      restore_slot ev slot
    done
  in
  let mispredict (ev : Component.event) =
    match ev.culprit with
    | None -> ()
    | Some culprit ->
      decode_meta ev;
      (* Rewind speculative counts from the culprit onward, then apply the
         culprit's actual direction. *)
      for slot = cfg.fetch_width - 1 downto culprit do
        restore_slot ev slot
      done;
      let (r : Types.resolved) = ev.slots.(culprit) in
      if Types.cond_branch r then begin
        match (m_hit.(culprit), entry_for ev culprit) with
        | true, Some off ->
          if r.r_taken = e_dir off then set_c_count off (min count_max (m_count.(culprit) + 1))
          else set_c_count off 0
        | _ ->
          (* An untracked mispredicting conditional branch: start tracking,
             assuming the misprediction was a loop exit. *)
          let pc = Context.slot_pc ev.ctx culprit in
          let off = 6 * index pc in
          Slab.unsafe_set state off 1;
          Slab.unsafe_set state (off + 1) (tag_of pc);
          set_p_count off 0;
          set_c_count off 0;
          set_conf off 0;
          set_dir off (not r.r_taken)
      end
  in
  let update (ev : Component.event) =
    decode_meta ev;
    for slot = 0 to cfg.fetch_width - 1 do
      if m_hit.(slot) then
        match entry_for ev slot with
        | Some off ->
          let (r : Types.resolved) = ev.slots.(slot) in
          let c = m_count.(slot) in
          if Types.cond_branch r then
            if r.r_taken <> e_dir off then begin
              (* Committed loop exit after [c] body iterations. *)
              if c = 0 then begin
                (* Two consecutive exits: the learned body direction is
                   the branch's minority direction — flip it. *)
                set_dir off (not (e_dir off));
                set_p_count off 0;
                set_conf off 0
              end
              else if c < count_max then begin
                if e_p_count off = c then set_conf off (min conf_max (e_conf off + 1))
                else begin
                  set_p_count off c;
                  set_conf off (if e_conf off >= cfg.conf_threshold then 0 else 1)
                end
              end
            end
            else if e_p_count off > 0 && c >= e_p_count off then
              (* Ran past the learned trip count without exiting. *)
              set_conf off (max 0 (e_conf off - 1))
        | None -> ()
    done
  in
  let entry_bits = 1 + cfg.tag_bits + (2 * cfg.count_bits) + cfg.conf_bits + 1 in
  let storage =
    Storage.make ~sram_bits:(cfg.entries * entry_bits) ~logic_gates:(cfg.fetch_width * 70) ()
  in
  Component.make ~name:cfg.name ~family:Component.Loop ~latency:cfg.latency ~meta_bits ~storage
    ~state ~predict ~fire ~mispredict ~repair ~update ()
