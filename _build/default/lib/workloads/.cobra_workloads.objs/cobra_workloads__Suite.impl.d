lib/workloads/suite.ml: Cobra_isa Coremark Dhrystone Kernels List Spec String
