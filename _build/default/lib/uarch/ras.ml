type t = { slots : int array; mutable sp : int; mutable live : int }

let create ~entries =
  if entries < 1 then invalid_arg "Ras.create: entries < 1";
  { slots = Array.make entries 0; sp = 0; live = 0 }

let push t addr =
  t.slots.(t.sp) <- addr;
  t.sp <- (t.sp + 1) mod Array.length t.slots;
  t.live <- min (Array.length t.slots) (t.live + 1)

let pop t =
  if t.live = 0 then None
  else begin
    t.sp <- (t.sp - 1 + Array.length t.slots) mod Array.length t.slots;
    t.live <- t.live - 1;
    Some t.slots.(t.sp)
  end

let peek t =
  if t.live = 0 then None
  else Some t.slots.((t.sp - 1 + Array.length t.slots) mod Array.length t.slots)

let depth t = t.live

type snapshot = { s_sp : int; s_live : int; s_top : int }

let checkpoint t =
  { s_sp = t.sp; s_live = t.live; s_top = (match peek t with Some v -> v | None -> 0) }

let restore t s =
  t.sp <- s.s_sp;
  t.live <- s.s_live;
  if s.s_live > 0 then
    t.slots.((s.s_sp - 1 + Array.length t.slots) mod Array.length t.slots) <- s.s_top

let storage t = Cobra.Storage.make ~flop_bits:(Array.length t.slots * 48) ()
