examples/design_exploration.ml: Cobra Cobra_eval Cobra_synth Cobra_uarch Cobra_workloads Designs Experiment Format List
