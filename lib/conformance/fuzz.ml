module Bits = Cobra_util.Bits
module Rng = Cobra_util.Rng
open Cobra

type shape =
  | Loops
  | Correlated
  | Aliasing
  | Phases
  | Storms
  | Mixed
  | Ladder
  | Alias_stress
  | Loop_scan

let all_shapes =
  [ Loops; Correlated; Aliasing; Phases; Storms; Mixed; Ladder; Alias_stress; Loop_scan ]

let shape_name = function
  | Loops -> "loops"
  | Correlated -> "correlated"
  | Aliasing -> "aliasing"
  | Phases -> "phases"
  | Storms -> "storms"
  | Mixed -> "mixed"
  | Ladder -> "ladder"
  | Alias_stress -> "alias-stress"
  | Loop_scan -> "loop-scan"

let shape_names = List.map shape_name all_shapes

let shape_of_name n =
  let n = String.lowercase_ascii (String.trim n) in
  List.find_opt (fun s -> String.equal (shape_name s) n) all_shapes

let shape_of_name_exn n =
  match shape_of_name n with
  | Some s -> s
  | None ->
    failwith
      (Printf.sprintf "unknown fuzz shape %S (valid shapes: %s)" n
         (String.concat ", " shape_names))

type scenario = { seed : int; shape : shape; length : int }

type path = Commit | Wrong_path | Storm of int

type packet = {
  pk_ctx : Context.t;
  pk_pred_in : Types.prediction list;
  pk_slots : Types.resolved array;
  pk_path : path;
}

type branch = {
  br_pc : int;
  br_kind : Types.branch_kind;
  br_taken : bool;
  br_target : int;
}

(* History widths used by every generated context; wide enough for the
   longest history any catalogued component folds. *)
let ghist_bits = 64
let lhist_bits = 16
let phist_bits = 16

let shape_tag = function
  | Loops -> 1
  | Correlated -> 2
  | Aliasing -> 3
  | Phases -> 4
  | Storms -> 5
  | Mixed -> 6
  | Ladder -> 7
  | Alias_stress -> 8
  | Loop_scan -> 9

(* --- direction engine -------------------------------------------------------- *)

type engine = {
  rng : Rng.t;
  iters : (int, int) Hashtbl.t;  (** per-PC loop iteration counters *)
  mutable recent : bool array;  (** ring of correlated-source outcomes *)
  mutable recent_pos : int;
  mutable tick : int;
}

let engine_create seed shape =
  {
    rng = Rng.create ~seed:(seed lxor (shape_tag shape * 0x9e3779b9));
    iters = Hashtbl.create 64;
    recent = Array.make 8 true;
    recent_pos = 0;
    tick = 0;
  }

(* Trip counts deliberately small and mixed so exits are frequent. *)
let trip_counts = [| 3; 5; 7; 12 |]

(* Loop_scan sweeps a much wider trip ladder, reaching past typical folded
   history lengths so a predictor's loop-bound limit is actually crossed. *)
let scan_trip_counts = [| 2; 4; 9; 17; 33; 65; 129; 257 |]

(* Ladder directions follow a de Bruijn B(2,6) sequence per PC: every
   6-window unique, so anything with >= 6 usable history bits can learn it
   and anything shorter is pinned near chance. *)
let ladder_order = 6
let ladder_seq = lazy (Cobra_util.Debruijn.sequence ~order:ladder_order)

let rec direction eng shape pc =
  match shape with
  | Loops ->
    let trips = trip_counts.((pc lsr 4) land 3) in
    let iter = match Hashtbl.find_opt eng.iters pc with Some i -> i | None -> 0 in
    if iter + 1 >= trips then begin
      Hashtbl.replace eng.iters pc 0;
      false (* loop exit *)
    end
    else begin
      Hashtbl.replace eng.iters pc (iter + 1);
      true
    end
  | Correlated ->
    if pc land 0x10 = 0 then begin
      (* a source branch: random outcome, remembered *)
      let out = Rng.bool eng.rng in
      eng.recent.(eng.recent_pos) <- out;
      eng.recent_pos <- (eng.recent_pos + 1) mod Array.length eng.recent;
      out
    end
    else
      (* a follower: repeats the source outcome from two branches ago *)
      eng.recent.((eng.recent_pos + Array.length eng.recent - 2) mod Array.length eng.recent)
  | Aliasing ->
    (* conflicting per-PC biases over a dense PC set *)
    let biased_taken = (pc lsr 2) land 1 = 0 in
    if Rng.chance eng.rng 0.9 then biased_taken else not biased_taken
  | Phases ->
    let base = eng.tick / 128 mod 2 = 0 in
    if Rng.chance eng.rng 0.85 then base else not base
  | Storms -> Rng.bool eng.rng
  | Mixed ->
    let sub = [| Loops; Correlated; Aliasing; Phases; Storms |] in
    direction eng sub.(eng.tick / 64 mod Array.length sub) pc
  | Ladder ->
    let seq = Lazy.force ladder_seq in
    let pos = match Hashtbl.find_opt eng.iters pc with Some i -> i | None -> 0 in
    Hashtbl.replace eng.iters pc ((pos + 1) mod Array.length seq);
    seq.(pos)
  | Alias_stress ->
    (* fully deterministic conflicting per-PC biases: adjacent sites want
       opposite directions, so any index collision is destructive *)
    (pc lsr 4) land 1 = 0
  | Loop_scan ->
    let trips = scan_trip_counts.((pc lsr 4) land 7) in
    let iter = match Hashtbl.find_opt eng.iters pc with Some i -> i | None -> 0 in
    if iter + 1 >= trips then begin
      Hashtbl.replace eng.iters pc 0;
      false
    end
    else begin
      Hashtbl.replace eng.iters pc (iter + 1);
      true
    end

let pick_pc eng shape =
  let pool_size =
    match shape with
    | Aliasing -> 24
    | Loops -> 6
    | Ladder -> 4
    | Alias_stress -> 32
    | Loop_scan -> 8
    | _ -> 12
  in
  let base = 0x4000 in
  base + (16 * Rng.int eng.rng pool_size)

let pick_kind eng =
  match Rng.int eng.rng 20 with
  | 0 -> Types.Jump
  | 1 -> Types.Call
  | 2 -> Types.Ret
  | 3 | 4 -> Types.Ind
  | _ -> Types.Cond

let pick_target eng pc =
  (* mostly short backward/forward hops, occasionally far *)
  let delta = (Rng.int eng.rng 64 - 32) * 4 in
  let t = if Rng.chance eng.rng 0.1 then 0x9000 + (4 * Rng.int eng.rng 256) else pc + delta in
  max 0 t

(* --- component-level scripts -------------------------------------------------- *)

let random_opinion eng =
  if Rng.chance eng.rng 0.45 then Types.empty_opinion
  else begin
    let taken = Rng.bool eng.rng in
    if Rng.chance eng.rng 0.3 then
      (* BTB-shaped opinion: existence, kind and target *)
      let kind = pick_kind eng in
      {
        Types.o_branch = Some true;
        o_kind = Some kind;
        o_taken = (if Types.is_unconditional kind then Some true else Some taken);
        o_target = Some (0x4000 + (4 * Rng.int eng.rng 512));
      }
    else { Types.empty_opinion with o_taken = Some taken }
  end

let resolved_slot eng shape pc slot =
  if Rng.chance eng.rng 0.25 then Types.no_branch
  else begin
    let kind = pick_kind eng in
    let slot_pc = pc + (4 * slot) in
    let taken =
      match kind with Types.Cond -> direction eng shape slot_pc | _ -> true
    in
    Types.resolved_branch ~kind ~taken
      ~target:(if taken then pick_target eng slot_pc else 0)
  end

let advance_histories ghist lhists phist (slots : Types.resolved array) =
  let g = ref ghist and p = ref phist in
  let lh = Array.copy lhists in
  Array.iteri
    (fun slot (r : Types.resolved) ->
      if Types.cond_branch r then begin
        g := Bits.shift_in_lsb !g r.r_taken;
        lh.(slot) <- Bits.shift_in_lsb lh.(slot) r.r_taken
      end;
      if r.r_is_branch && r.r_taken then
        p := Bits.shift_in_lsb !p ((r.r_target lsr 2) land 1 = 1))
    slots;
  (!g, lh, !p)

let pick_path eng shape (slots : Types.resolved array) =
  let wrongp, stormp =
    match shape with Storms -> (0.25, 0.3) | _ -> (0.1, 0.12)
  in
  if Rng.chance eng.rng wrongp then Wrong_path
  else if Rng.chance eng.rng stormp then begin
    (* prefer a conditional culprit so direction machinery is exercised *)
    let candidates =
      List.filter
        (fun s -> slots.(s).Types.r_is_branch)
        (List.init (Array.length slots) Fun.id)
    in
    match candidates with
    | [] -> Commit
    | cs -> Storm (List.nth cs (Rng.int eng.rng (List.length cs)))
  end
  else Commit

let packets sc ~arity ~fetch_width =
  let eng = engine_create sc.seed sc.shape in
  let ghist = ref (Bits.zero ghist_bits) in
  let lhists = ref (Array.init fetch_width (fun _ -> Bits.zero lhist_bits)) in
  let phist = ref (Bits.zero phist_bits) in
  List.init sc.length (fun _ ->
      eng.tick <- eng.tick + 1;
      let pc = pick_pc eng sc.shape in
      let slots = Array.init fetch_width (fun slot -> resolved_slot eng sc.shape pc slot) in
      let pred_in =
        List.init arity (fun _ ->
            Array.init fetch_width (fun _ -> random_opinion eng))
      in
      let ctx =
        Context.make ~pc ~fetch_width ~ghist:!ghist ~lhists:!lhists ~phist:!phist ()
      in
      let path = pick_path eng sc.shape slots in
      (match path with
      | Wrong_path -> ()
      | Commit | Storm _ ->
        let g, lh, p = advance_histories !ghist !lhists !phist slots in
        ghist := g;
        lhists := lh;
        phist := p);
      { pk_ctx = ctx; pk_pred_in = pred_in; pk_slots = slots; pk_path = path })

(* --- pipeline-level branch streams --------------------------------------------- *)

let branches sc =
  let eng = engine_create sc.seed sc.shape in
  List.init sc.length (fun _ ->
      eng.tick <- eng.tick + 1;
      let pc = pick_pc eng sc.shape in
      let kind = if Rng.chance eng.rng 0.85 then Types.Cond else pick_kind eng in
      let taken =
        match kind with Types.Cond -> direction eng sc.shape pc | _ -> true
      in
      {
        br_pc = pc;
        br_kind = kind;
        br_taken = taken;
        br_target = (if taken then pick_target eng pc else 0);
      })
