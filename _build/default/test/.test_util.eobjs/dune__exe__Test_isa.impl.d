test/test_isa.ml: Alcotest Array Cobra Cobra_eval Cobra_isa Cobra_uarch Cobra_workloads Filename Fun Insn List Machine Option Program QCheck QCheck_alcotest Sys Trace Trace_file
