(** The fidelity oracle: replays {!Pattern} streams through {!Target}
    pipelines and judges the measured accuracy-vs-level series against the
    target's declared analytical response.

    This is semantics-vs-theory checking — the complement of the
    conformance kit's impl-vs-reimpl lockstep: a predictor that faithfully
    implements the {e wrong} geometry passes lockstep but fails here. *)

val collapse_threshold : float
(** 0.90 — accuracy below this counts as a collapsed (post-capacity)
    level; the falling-edge detector. *)

val rising_threshold : float
(** 0.89 — the phase probe's recovery bar. *)

type measurement = {
  m_level : int;
  m_samples : int;  (** post-warmup, metric-PC-filtered predictions *)
  m_misses : int;
  m_accuracy : float;
  m_model : float option;  (** expected accuracy when the model is exact *)
}

type verdict = Pass | Fail of string | Info

type result = {
  r_target : string;
  r_family : string;
  r_probe : string;
  r_unit : string;
  r_expect : Target.expect;
  r_series : measurement list;
  r_verdict : verdict;
}

type report = {
  rep_seed : int;
  rep_elapsed_s : float;
  rep_results : result list;
}

val measure :
  target:Target.t -> probe:Pattern.t -> level:int -> seed:int -> measurement
(** One point: fresh pipeline, one probe stream, post-warmup metric. *)

val grid : probe_name:string -> Target.expect -> int list
(** The level grid the oracle sweeps for an expectation (brackets a
    predicted edge; fixed characteristic grids for informational pairs). *)

val judge : Target.expect -> measurement list -> verdict

val run_pair : target:Target.t -> probe:Pattern.t -> seed:int -> result

val run_matrix :
  ?targets:Target.t list -> ?probes:Pattern.t list -> seed:int -> unit -> report
(** Default: every catalogued probe over every non-demo target. *)

val failures : report -> result list

val report_json : report -> Cobra_stats.Json.t
(** Schema [cobra-probe-report/1]. *)

val report_csv : report -> string
(** One row per (target, probe, level) measurement. *)

val render : report -> string
(** Human-readable per-pair series + verdict summary. *)

val timing_series :
  ?width:int ->
  ?penalty:int ->
  target:Target.t ->
  probe:Pattern.t ->
  level:int ->
  seed:int ->
  unit ->
  Cobra_stats.Json.t
(** Schema [cobra-probe-timing/1]: the probe replay bucketed through
    {!Cobra_stats.Interval} under a synthetic timing model (1 cycle per
    instruction + [penalty] per mispredict), plus a log2 histogram of
    distances between consecutive mispredicts. *)

val serve_op :
  Cobra_trace_replay.Serve.config ->
  (string -> unit) ->
  ?id:string ->
  Cobra_stats.Json.t ->
  unit
(** The [{"op": "probe"}] handler for [Serve.config.extra_ops]: streams one
    ["probe"] event per pair and a ["probe-summary"]. Unknown probe or
    target names raise [Failure] listing the valid names, which the daemon
    turns into an id-tagged ["error"] event. *)
