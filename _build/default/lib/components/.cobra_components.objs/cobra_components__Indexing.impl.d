lib/components/indexing.ml: Array Cobra Cobra_util List Printf String
