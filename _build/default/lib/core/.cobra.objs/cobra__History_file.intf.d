lib/core/history_file.mli: Cobra_util Context Storage Types
