lib/workloads/kernels.ml: Cobra_isa Gen Insn List Machine Printf Program
