lib/synth/tech.ml:
