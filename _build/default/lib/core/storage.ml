type t = { sram_bits : int; flop_bits : int; logic_gates : int }

let zero = { sram_bits = 0; flop_bits = 0; logic_gates = 0 }

let make ?(sram_bits = 0) ?(flop_bits = 0) ?(logic_gates = 0) () =
  if sram_bits < 0 || flop_bits < 0 || logic_gates < 0 then
    invalid_arg "Storage.make: negative amount";
  { sram_bits; flop_bits; logic_gates }

let add a b =
  {
    sram_bits = a.sram_bits + b.sram_bits;
    flop_bits = a.flop_bits + b.flop_bits;
    logic_gates = a.logic_gates + b.logic_gates;
  }

let sum = List.fold_left add zero
let total_bits t = t.sram_bits + t.flop_bits
let kilobytes t = float_of_int (total_bits t) /. 8192.0

let scale t n =
  { sram_bits = t.sram_bits * n; flop_bits = t.flop_bits * n; logic_gates = t.logic_gates * n }

let pp ppf t =
  Format.fprintf ppf "sram=%db flop=%db logic=%dg (%.2f KB)" t.sram_bits t.flop_bits
    t.logic_gates (kilobytes t)
