module Hashing = Cobra_util.Hashing

type t = Pc | Ghist of int | Lhist of int | Phist of int | Hash of t list

let rec index src (ctx : Cobra.Context.t) ~slot ~bits =
  match src with
  | Pc -> Hashing.pc_index ~pc:(Cobra.Context.slot_pc ctx slot) ~bits
  | Ghist n -> Cobra.Context.folded_ghist ctx ~len:n ~bits
  | Lhist n -> Hashing.folded_history ctx.lhists.(slot) ~len:n ~bits
  | Phist n -> Cobra.Context.folded_phist ctx ~len:n ~bits
  | Hash srcs -> Hashing.combine ~bits (List.map (fun s -> index s ctx ~slot ~bits) srcs)

let rec describe = function
  | Pc -> "pc"
  | Ghist n -> Printf.sprintf "ghist[%d]" n
  | Lhist n -> Printf.sprintf "lhist[%d]" n
  | Phist n -> Printf.sprintf "phist[%d]" n
  | Hash srcs -> "hash(" ^ String.concat "^" (List.map describe srcs) ^ ")"
