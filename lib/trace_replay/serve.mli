(** [cobra serve] — a persistent sweep-serving daemon over a Unix socket.

    Protocol: line-delimited JSON. The client sends one request object per
    line; the server answers with a stream of event objects, one per line,
    always terminated by [{"event": "done"}] — so a client can multiplex
    requests over one connection by reading to the terminator.

    Requests ([op] selects):

    - [{"op": "ping"}] — liveness probe; answered with ["pong"].
    - [{"op": "replay", "design": D, "trace", PATH, ...}] — one replay
      point. Optional fields: [max_branches], [max_insns] (caps),
      [stats: true] (attach the collector; streams ["interval"] points and
      a ["stats"] summary, skips the result cache), [no_cache: true],
      ["engine": "compiled"|"interpreted"] (default compiled — the staged
      topology compiler's engine, bit-identical to the interpreter per the
      compiled_twin conformance checks; stats runs always interpret).
    - [{"op": "sweep", "designs": [..], "traces": [..], ...}] — the full
      cross product, sharded over the domain pool; one ["result"] event per
      point as it completes (submission order), same optional caps.
      [designs] omitted or empty means the paper's Table I designs.
      With [warmup_branches] and [window_branches] (plus optional
      [windows], default 1, and [verify: true]) the sweep runs in windowed
      mode: each point replays a shared warmup region once, checkpoints
      the whole design into a flat snapshot (kept in a process-local warm
      cache keyed like the result cache, so later sweeps restore it with
      one memcpy per region instead of re-warming), then measures
      [windows] consecutive windows of [window_branches] branches; one
      ["result"] event per window carries ["window"], ["warm_cached"],
      ["verified"] and ["engine"]. [verify: true] recomputes the whole
      region on a fresh {e interpreted} pipeline without snapshots and
      fails the request unless every window's counters match bit-for-bit
      — under the default compiled engine this certifies both the
      snapshot handoff and the compilation in one pass. The warm cache is
      a bounded LRU of [COBRA_WARM_CACHE] checkpoints (default 64,
      minimum 1); ["sweep_summary"] events report ["warm_entries"] and
      ["warm_evictions"].
    - [{"op": "shutdown"}] — answered with ["bye"]; the daemon drains and
      exits.

    Responses all carry ["ts"], ["label": "serve"] and the request's ["id"]
    (when given) so they interleave safely in logs; ["result"] events carry
    the replay counters, MPKI and ["cached": true|false]. Repeated points
    are answered from the runner's content-addressed result cache keyed on
    design topology + pipeline config + trace file digest + caps. A
    malformed or failing request produces an ["error"] event (plus "done")
    on that connection only — the daemon survives. Per-request work is
    bounded by the server's timeout and runs isolated, so one poisoned
    trace cannot wedge the pool. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  jobs : int;  (** domain-pool width for sweep sharding *)
  timeout_s : float option;  (** per-request replay budget *)
  log : (string -> unit) option;  (** server-side event mirror *)
  extra_ops :
    (string * (config -> (string -> unit) -> ?id:string -> Cobra_stats.Json.t -> unit)) list;
      (** additional [op] handlers registered by the embedding binary (the
          CLI plugs the probe sweep in here, keeping this library free of a
          dependency on the probe oracle). A handler emits its own event
          lines through the send callback; any [Failure] it raises becomes
          an id-tagged ["error"] event and the daemon keeps serving. *)
}

val default_config : socket:string -> config
(** No timeout, no log, no extra ops, pool-default jobs. *)

val serve : config -> unit
(** Bind (unlinking any stale socket first), then accept-loop until a
    [shutdown] request arrives. Each connection is handled on its own
    thread; [SIGPIPE] is ignored so a client hanging up mid-stream only
    ends that connection. *)

(** {1 Client side} *)

val request : ?timeout_s:float -> socket:string -> string -> string list
(** Connect, send one request line, and return every response line through
    the ["done"] terminator (inclusive). Raises [Failure] on connect
    errors, EOF before the terminator, or [timeout_s] (default 60s)
    expiring. *)

val shutdown : ?timeout_s:float -> socket:string -> unit -> unit
(** Send [{"op": "shutdown"}] and wait for the acknowledgement. *)

val emit_event :
  config ->
  (string -> unit) ->
  ?id:string ->
  event:string ->
  (string * Cobra_stats.Json.t) list ->
  unit
(** Emit one protocol event line (ts/label/id envelope) through the send
    callback — the building block for [extra_ops] handlers. *)

(** {1 Exposed for tests} *)

val handle_line : config -> (string -> unit) -> string -> [ `Continue | `Shutdown ]
(** Process one request line, emitting response lines through the callback.
    Never raises: protocol and execution failures become ["error"]
    events. *)

val warm_cache_stats : unit -> int * int
(** [(entries, evictions)] of the process-local warm-checkpoint LRU —
    entries currently cached and checkpoints evicted since process start
    (the telemetry behind ["sweep_summary"], observable directly by the
    regression tests). *)
