lib/workloads/coremark.mli: Cobra_isa
