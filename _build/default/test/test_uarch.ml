open Cobra_uarch
module Trace = Cobra_isa.Trace

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* --- cache ------------------------------------------------------------------ *)

let test_cache_hit_after_fill () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~ways:2 ~line_bytes:64 in
  check Alcotest.bool "cold miss" false (Cache.access c ~addr:0x1000);
  check Alcotest.bool "warm hit" true (Cache.access c ~addr:0x1000);
  check Alcotest.bool "same line hit" true (Cache.access c ~addr:0x103F);
  check Alcotest.bool "next line misses" false (Cache.access c ~addr:0x1040)

let test_cache_lru () =
  (* 2 ways: A, B, touch A, insert C (same set) -> B evicted *)
  let c = Cache.create ~name:"t" ~size_bytes:(2 * 64 * 8) ~ways:2 ~line_bytes:64 in
  let set_stride = 8 * 64 in
  let a = 0x0 and b = set_stride and cc = 2 * set_stride in
  ignore (Cache.access c ~addr:a);
  ignore (Cache.access c ~addr:b);
  ignore (Cache.access c ~addr:a);
  ignore (Cache.access c ~addr:cc);
  check Alcotest.bool "A survives" true (Cache.probe c ~addr:a);
  check Alcotest.bool "B evicted" false (Cache.probe c ~addr:b)

let test_cache_prefetch () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~ways:2 ~line_bytes:64 in
  Cache.prefetch c ~addr:0x2000;
  check Alcotest.int "prefetch counts no stats" 0 (Cache.hits c + Cache.misses c);
  check Alcotest.bool "line resident" true (Cache.access c ~addr:0x2000)

let prop_cache_never_negative =
  QCheck.Test.make ~name:"cache stats consistent" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 200) (int_bound 100_000))
    (fun addrs ->
      let c = Cache.create ~name:"p" ~size_bytes:4096 ~ways:4 ~line_bytes:64 in
      List.iter (fun a -> ignore (Cache.access c ~addr:a)) addrs;
      Cache.hits c + Cache.misses c = List.length addrs)

(* --- memory model -------------------------------------------------------------- *)

let test_mem_hierarchy_latencies () =
  let m = Mem_model.create () in
  let lat = Mem_model.default_latencies in
  let first = Mem_model.load_latency m ~addr:0x12345 in
  check Alcotest.bool "cold load is slow" true (first > lat.Mem_model.l1);
  check Alcotest.int "warm load hits L1" lat.Mem_model.l1
    (Mem_model.load_latency m ~addr:0x12345)

let test_fetch_next_line_prefetch () =
  let m = Mem_model.create () in
  ignore (Mem_model.fetch_latency m ~addr:0x4000);
  check Alcotest.int "sequential line prefetched" 0 (Mem_model.fetch_latency m ~addr:0x4040)

(* --- RAS -------------------------------------------------------------------------- *)

let test_ras_lifo () =
  let r = Ras.create ~entries:4 in
  Ras.push r 0x100;
  Ras.push r 0x200;
  check Alcotest.(option int) "peek" (Some 0x200) (Ras.peek r);
  check Alcotest.(option int) "pop" (Some 0x200) (Ras.pop r);
  check Alcotest.(option int) "pop 2" (Some 0x100) (Ras.pop r);
  check Alcotest.(option int) "empty" None (Ras.pop r)

let test_ras_overflow_wraps () =
  let r = Ras.create ~entries:2 in
  List.iter (Ras.push r) [ 1; 2; 3 ];
  check Alcotest.(option int) "newest" (Some 3) (Ras.pop r);
  check Alcotest.(option int) "second" (Some 2) (Ras.pop r);
  check Alcotest.(option int) "oldest clobbered" None (Ras.pop r)

(* --- SFB transform ------------------------------------------------------------------ *)

let hammock_events ~taken =
  (* pc 0x100: branch over one instruction to 0x108 *)
  let branch =
    {
      (Trace.plain ~pc:0x100 ~cls:Trace.Alu) with
      Trace.branch = Some { Trace.kind = Cobra.Types.Cond; taken; target = 0x108 };
      next_pc = (if taken then 0x108 else 0x104);
      srcs = [ 7 ];
    }
  in
  let shadow = { (Trace.plain ~pc:0x104 ~cls:Trace.Alu) with Trace.dst = Some 8 } in
  let after = Trace.plain ~pc:0x108 ~cls:Trace.Alu in
  if taken then [ branch; after ] else [ branch; shadow; after ]

let test_sfb_taken_inserts_nops () =
  let s = Sfb.transform ~max_offset:32 (Trace.of_list (hammock_events ~taken:true)) in
  let out = Trace.take s 10 in
  check Alcotest.int "three events" 3 (List.length out);
  let flag = List.nth out 0 and nop = List.nth out 1 and after = List.nth out 2 in
  check Alcotest.bool "branch became non-branch" true (flag.Trace.branch = None);
  check Alcotest.bool "gap filled with nop" true (nop.Trace.cls = Trace.Nop);
  check Alcotest.(list int) "nop depends on the flag" [ 7 ] nop.Trace.srcs;
  check Alcotest.int "stream continues at target" 0x108 after.Trace.pc;
  (* pc chain stays coherent *)
  check Alcotest.int "flag falls through" 0x104 flag.Trace.next_pc;
  check Alcotest.int "nop falls through" 0x108 nop.Trace.next_pc

let test_sfb_not_taken_predicates_shadow () =
  let s = Sfb.transform ~max_offset:32 (Trace.of_list (hammock_events ~taken:false)) in
  let out = Trace.take s 10 in
  check Alcotest.int "three events" 3 (List.length out);
  let shadow = List.nth out 1 in
  check Alcotest.bool "shadow gains flag dependency" true (List.mem 7 shadow.Trace.srcs)

let test_sfb_leaves_long_branches () =
  let branch =
    {
      (Trace.plain ~pc:0x100 ~cls:Trace.Alu) with
      Trace.branch = Some { Trace.kind = Cobra.Types.Cond; taken = true; target = 0x400 };
      next_pc = 0x400;
    }
  in
  let s = Sfb.transform ~max_offset:32 (Trace.of_list [ branch ]) in
  let out = Trace.take s 5 in
  check Alcotest.bool "still a branch" true ((List.hd out).Trace.branch <> None)

(* --- core model --------------------------------------------------------------------- *)

let tage_l () = Cobra_eval.Designs.pipeline Cobra_eval.Designs.tage_l

let run_core ?(config = Config.default) ?(insns = 20_000) stream =
  let core = Core.create config (tage_l ()) stream in
  Core.run core ~max_insns:insns

let test_core_commits_requested_instructions () =
  let perf = run_core (Cobra_workloads.Kernels.periodic_loop ~trips:5 ()) in
  check Alcotest.bool "committed >= requested" true (perf.Perf.instructions >= 20_000);
  check Alcotest.bool "ipc under machine width" true (Perf.ipc perf <= 4.0)

let test_core_finite_program_drains () =
  (* a program that halts: every instruction must commit exactly once *)
  let open Cobra_isa in
  let lines =
    [ Program.li 28 100; Program.label "l"; Program.addi 3 3 1; Program.addi 28 28 (-1);
      Program.bne 28 0 "l"; Program.halt ]
  in
  let m = Machine.create (Program.assemble lines) in
  let perf = run_core ~insns:100_000 (Machine.stream m) in
  (* li + 100 iterations x 3 *)
  check Alcotest.int "every retired instruction commits once" 301 perf.Perf.instructions

let test_core_deterministic () =
  let run () = run_core (Cobra_workloads.Kernels.aliasing ~sites:16 ~seed:5 ()) in
  let a = run () and b = run () in
  check Alcotest.int "same cycles" a.Perf.cycles b.Perf.cycles;
  check Alcotest.int "same mispredicts" a.Perf.mispredicts b.Perf.mispredicts

let test_core_perfect_on_unconditional_loop () =
  (* a straight unconditional loop: after warmup the BTB covers it *)
  let open Cobra_isa in
  let lines = [ Program.label "l"; Program.addi 3 3 1; Program.xor 4 3 3; Program.j "l" ] in
  let m = Machine.create (Program.assemble lines) in
  let perf = run_core ~insns:10_000 (Machine.stream m) in
  check Alcotest.bool "no resolution mispredicts" true (perf.Perf.mispredicts = 0);
  check Alcotest.bool "high ipc" true (Perf.ipc perf > 1.5)

let test_core_mispredict_penalty_visible () =
  (* random branches must cost cycles: IPC with 50% random branches is far
     below IPC with fully-biased ones *)
  let ipc_of bias =
    Perf.ipc (run_core (Cobra_workloads.Kernels.biased ~bias_percent:bias ~seed:3 ()))
  in
  let ipc_biased = ipc_of 100 and ipc_random = ipc_of 50 in
  check Alcotest.bool
    (Printf.sprintf "ipc %0.2f (biased) > %0.2f (random)" ipc_biased ipc_random)
    true
    (ipc_biased > ipc_random *. 1.3)

let test_serialize_fetch_costs_ipc () =
  let run serialize =
    Perf.ipc
      (run_core
         ~config:{ Config.default with Config.serialize_fetch = serialize }
         (Cobra_workloads.Dhrystone.stream ()))
  in
  let wide = run false and serial = run true in
  check Alcotest.bool
    (Printf.sprintf "serialized %0.3f < wide %0.3f" serial wide)
    true (serial < wide)

let test_memory_bound_workload_has_low_ipc () =
  let mcf = (Cobra_workloads.Suite.find "mcf").Cobra_workloads.Suite.make () in
  let x264 = (Cobra_workloads.Suite.find "x264").Cobra_workloads.Suite.make () in
  let ipc_mcf = Perf.ipc (run_core mcf) and ipc_x264 = Perf.ipc (run_core x264) in
  check Alcotest.bool
    (Printf.sprintf "mcf %0.2f well below x264 %0.2f" ipc_mcf ipc_x264)
    true
    (ipc_mcf < ipc_x264 /. 2.0)

let prop_core_accuracy_in_range =
  QCheck.Test.make ~name:"accuracy within [0,1]" ~count:8
    QCheck.(int_range 30 95)
    (fun bias ->
      let perf = run_core ~insns:5_000 (Cobra_workloads.Kernels.biased ~bias_percent:bias ~seed:bias ()) in
      let a = Perf.branch_accuracy perf in
      a >= 0.0 && a <= 1.0 && perf.Perf.cycles > 0)

let () =
  Alcotest.run "cobra_uarch"
    [
      ( "cache",
        [
          Alcotest.test_case "hit after fill" `Quick test_cache_hit_after_fill;
          Alcotest.test_case "lru" `Quick test_cache_lru;
          Alcotest.test_case "prefetch" `Quick test_cache_prefetch;
          qcheck prop_cache_never_negative;
        ] );
      ( "mem_model",
        [
          Alcotest.test_case "hierarchy latencies" `Quick test_mem_hierarchy_latencies;
          Alcotest.test_case "next-line prefetch" `Quick test_fetch_next_line_prefetch;
        ] );
      ( "ras",
        [
          Alcotest.test_case "lifo" `Quick test_ras_lifo;
          Alcotest.test_case "overflow wraps" `Quick test_ras_overflow_wraps;
        ] );
      ( "sfb",
        [
          Alcotest.test_case "taken inserts nops" `Quick test_sfb_taken_inserts_nops;
          Alcotest.test_case "not-taken predicates shadow" `Quick
            test_sfb_not_taken_predicates_shadow;
          Alcotest.test_case "long branches untouched" `Quick test_sfb_leaves_long_branches;
        ] );
      ( "core",
        [
          Alcotest.test_case "commits requested" `Quick test_core_commits_requested_instructions;
          Alcotest.test_case "finite program drains" `Quick test_core_finite_program_drains;
          Alcotest.test_case "deterministic" `Quick test_core_deterministic;
          Alcotest.test_case "perfect on jump loop" `Quick test_core_perfect_on_unconditional_loop;
          Alcotest.test_case "mispredict penalty" `Quick test_core_mispredict_penalty_visible;
          Alcotest.test_case "serialize fetch costs" `Quick test_serialize_fetch_costs_ipc;
          Alcotest.test_case "memory-bound low ipc" `Quick test_memory_bound_workload_has_low_ipc;
          qcheck prop_core_accuracy_in_range;
        ] );
    ]
