(** O-GEHL direction predictor (Seznec, CBP-1 2004). Extension component —
    one of the history-based predictor families the paper's Section II-A
    surveys.

    Several tables of signed counters indexed by hashes of the PC with
    geometrically increasing history lengths; the prediction is the sign of
    the {e sum} of the read counters, and training (on mispredictions or
    low-magnitude sums) nudges every participating counter — a hybrid
    between perceptron-style voting and TAGE-style geometric histories.
    The counters read at predict time travel in the metadata. *)

type config = {
  name : string;
  latency : int;
  table_bits : int;  (** log2 entries per table *)
  counter_bits : int;  (** signed counters *)
  history_lengths : int list;  (** one table per entry; 0 = PC-only table *)
  threshold : int;
  fetch_width : int;
}

val default : name:string -> config
(** 6 tables (histories 0, 2, 4, 8, 16, 32) of 1K 4-bit counters. *)

val storage_bits : config -> int
val make : config -> Cobra.Component.t
