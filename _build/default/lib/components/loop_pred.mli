(** Loop predictor (paper III-G5), a simplified version of the TAGE-SC-L
    loop corrector.

    Tracks conditional branches that iterate a fixed number of times in one
    direction and then exit once. Each entry learns the trip count
    [p_count]; a speculative [c_count] is incremented at {e fire} time (the
    paper notes this sub-component updates at query/fire rather than at
    commit) and restored from the metadata field during {e repair} — the
    paper's stated metadata use for this component. Tracking and counting
    are per-slot (superscalar, per paper III-C); a slot offers a prediction
    only once its entry's confidence saturates past [conf_threshold].

    Training of [p_count]/confidence happens at commit-time update using the
    predict-time count carried in the metadata; allocation happens in the
    fast mispredict event. *)

type config = {
  name : string;
  latency : int;
  entries : int;  (** power of two, direct mapped *)
  tag_bits : int;
  count_bits : int;
  conf_bits : int;
  conf_threshold : int;
  fetch_width : int;
}

val default : name:string -> config
(** 256 entries, 10-bit tags and counts, 3-bit confidence with threshold 4,
    latency 3, 4-wide. *)

val make : config -> Cobra.Component.t
