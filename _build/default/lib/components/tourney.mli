(** Tournament selector (paper III-G3).

    A 2-bit chooser table indexed by global history that arbitrates between
    two incoming predictions ([predict_in(0)] and [predict_in(1)]). The
    metadata field records the directions both sub-predictors provided so
    the chooser can be trained at commit time without re-querying them —
    the paper's stated metadata use for arbitration schemes.

    Convention: a chooser counter with its MSB set selects [predict_in(1)]
    (in the Alpha-style design, the global side). *)

type config = {
  name : string;
  latency : int;
  entries : int;  (** power of two *)
  counter_bits : int;
  history_length : int;
  fetch_width : int;
}

val default : name:string -> config
(** 1K counters, 2-bit, 12 bits of history, latency 3, 4-wide. *)

val make : config -> Cobra.Component.t
