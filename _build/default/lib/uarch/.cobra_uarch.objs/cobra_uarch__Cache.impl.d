lib/uarch/cache.ml: Array Cobra_util
