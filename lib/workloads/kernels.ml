open Cobra_isa
open Program

(* Register conventions inside kernels: x5 PRNG state, x6 scratch, x7..x15
   kernel locals, x28..x30 loop counters. *)
let x = 5
let tmp = 6
let r7 = 7
let r8 = 8
let acc = 9
let c100 = 10

let biased ~bias_percent ~seed () =
  let program =
    assemble
      (Gen.seed_rng ~state:x seed
      @ [ li c100 100; li acc 0 ]
      @ Gen.forever ~label:"top"
          ~body:
            (Gen.xorshift ~state:x ~tmp
            @ [
                rem r7 x c100;
                li r8 bias_percent;
                blt r7 r8 "hit";
                addi acc acc 1;
                j "join";
                label "hit";
                addi acc acc 2;
                label "join";
              ]))
  in
  Gen.stream_of_program program

let pattern_ttn () =
  let program =
    assemble
      ([ li r7 0; li acc 0 ]
      @ Gen.forever ~label:"top"
          ~body:
            [
              (* r7 cycles 0,1,2; branch taken when r7 <> 0 *)
              addi r7 r7 1;
              slti r8 r7 3;
              bne r8 0 "nowrap";
              li r7 0;
              label "nowrap";
              beq r7 0 "not_taken";
              addi acc acc 1;
              label "not_taken";
              addi acc acc 1;
            ])
  in
  Gen.stream_of_program program

let periodic_loop ~trips () =
  let program =
    assemble
      ([ li acc 0 ]
      @ Gen.forever ~label:"outer"
          ~body:
            (Gen.counted_loop ~counter:r7 ~trips ~label:"inner"
               ~body:[ addi acc acc 1; xor r8 acc r7 ]))
  in
  Gen.stream_of_program program

let aliasing ~sites ~seed () =
  let site i =
    if i mod 2 = 0 then
      (* strongly biased site: always taken *)
      [
        beq Insn.zero Insn.zero (Printf.sprintf "s%d_t" i);
        addi acc acc 3;
        label (Printf.sprintf "s%d_t" i);
        addi acc acc 1;
      ]
    else
      (* data-random site: tests one PRNG bit *)
      [
        srli r7 x (i mod 24);
        andi r7 r7 1;
        beq r7 0 (Printf.sprintf "s%d_nt" i);
        addi acc acc 1;
        label (Printf.sprintf "s%d_nt" i);
        addi acc acc 1;
      ]
  in
  let body =
    Gen.xorshift ~state:x ~tmp @ List.concat (List.init sites site)
  in
  let program =
    assemble (Gen.seed_rng ~state:x seed @ [ li acc 0 ] @ Gen.forever ~label:"top" ~body)
  in
  Gen.stream_of_program program

let h2p_mix ~seed () =
  (* 24 trivially-predictable sites plus 4 PRNG-driven hard-to-predict
     sites, padded with ALU filler to ~8 instructions per branch — the
     trace-shaped profile (mostly easy, a few H2P) of the replay bench. *)
  let pad n = List.init n (fun _ -> addi tmp tmp 1) in
  let easy i =
    pad 5
    @ [
        beq Insn.zero Insn.zero (Printf.sprintf "e%d" i);
        addi acc acc 3;
        label (Printf.sprintf "e%d" i);
        addi acc acc 1;
      ]
  in
  let hard i =
    pad 4
    @ [
        srli r7 x ((5 * i) + 1);
        andi r7 r7 1;
        beq r7 0 (Printf.sprintf "h%d" i);
        addi acc acc 1;
        label (Printf.sprintf "h%d" i);
        addi acc acc 1;
      ]
  in
  let body =
    Gen.xorshift ~state:x ~tmp
    @ List.concat (List.init 24 easy)
    @ List.concat (List.init 4 hard)
  in
  let program =
    assemble (Gen.seed_rng ~state:x seed @ [ li acc 0 ] @ Gen.forever ~label:"top" ~body)
  in
  Gen.stream_of_program program

let calls ~depth () =
  let fn i =
    let name = Printf.sprintf "fn%d" i in
    if i >= depth then
      [ label name; addi acc acc 1; insn (Insn.Jalr (Insn.zero, Insn.ra, 0)) ]
    else
      [
        label name;
        (* save ra on the stack *)
        sw Insn.ra Insn.sp 0;
        addi Insn.sp Insn.sp 1;
        addi acc acc 1;
        call (Printf.sprintf "fn%d" (i + 1));
        addi Insn.sp Insn.sp (-1);
        lw Insn.ra Insn.sp 0;
        insn (Insn.Jalr (Insn.zero, Insn.ra, 0));
      ]
  in
  let program =
    assemble
      ([ li acc 0; j "top" ]
      @ List.concat (List.init (depth + 1) fn)
      @ Gen.forever ~label:"top" ~body:[ call "fn0"; addi acc acc 1 ])
  in
  Gen.stream_of_program program

let indirect ~targets () =
  if targets < 2 || targets > 8 then invalid_arg "Kernels.indirect: targets in [2,8]";
  let table = 0x100 in
  let handler i =
    [ label (Printf.sprintf "h%d" i); addi acc acc (i + 1); j "next" ]
  in
  let program =
    assemble
      ([ li r7 0; li acc 0; j "next" ]
      @ List.concat (List.init targets handler)
      @ [
          label "next";
          (* rotate through the handler table *)
          addi r7 r7 1;
          slti r8 r7 targets;
          bne r8 0 "no_wrap";
          li r7 0;
          label "no_wrap";
          addi r8 r7 table;
          lw r8 r8 0;
          jalr Insn.zero r8 0;
        ])
  in
  let init m =
    for i = 0 to targets - 1 do
      Machine.poke m ~addr:(table + i)
        (Program.address_of program (Printf.sprintf "h%d" i))
    done
  in
  Gen.stream_of_program ~init program

let indirect_pure ~targets () =
  if not (List.mem targets [ 2; 4; 8 ]) then
    invalid_arg "Kernels.indirect_pure: targets must be 2, 4 or 8";
  let table = 0x100 in
  let handler i =
    [ label (Printf.sprintf "p%d" i); addi acc acc (i + 1); j "pnext" ]
  in
  let program =
    assemble
      ([ li r7 0; li acc 0; j "pnext" ]
      @ List.concat (List.init targets handler)
      @ [
          label "pnext";
          addi r7 r7 1;
          andi r7 r7 (targets - 1);
          addi r8 r7 table;
          lw r8 r8 0;
          jalr Insn.zero r8 0;
        ])
  in
  let init m =
    for i = 0 to targets - 1 do
      Machine.poke m ~addr:(table + i)
        (Program.address_of program (Printf.sprintf "p%d" i))
    done
  in
  Gen.stream_of_program ~init program

let pattern_rom ~pattern () =
  let len = Array.length pattern in
  if len < 1 || len > 4096 then invalid_arg "Kernels.pattern_rom: pattern length in [1,4096]";
  let rom = 0x200 in
  let program =
    assemble
      ([ li r7 0; li acc 0 ]
      @ Gen.forever ~label:"top"
          ~body:
            [
              (* fetch this step's direction from the ROM *)
              addi r8 r7 rom;
              lw r8 r8 0;
              (* the probe site: follows the ROM pattern exactly *)
              beq r8 0 "rom_nt";
              addi acc acc 1;
              label "rom_nt";
              addi acc acc 1;
              (* advance and wrap the pattern cursor *)
              addi r7 r7 1;
              slti r8 r7 len;
              bne r8 0 "rom_nowrap";
              li r7 0;
              label "rom_nowrap";
            ])
  in
  let init m =
    Array.iteri
      (fun i b -> Machine.poke m ~addr:(rom + i) (if b then 1 else 0))
      pattern
  in
  Gen.stream_of_program ~init program

let matrix () =
  let a = 0x200 and b = 0x240 and c_base = 0x280 in
  let program =
    assemble
      (Gen.forever ~label:"mm"
         ~body:
           (Gen.counted_loop ~counter:c100 ~trips:8 ~label:"mi"
              ~body:
                (Gen.counted_loop ~counter:r7 ~trips:8 ~label:"mj"
                   ~body:
                     ([ li acc 0 ]
                     @ Gen.counted_loop ~counter:r8 ~trips:8 ~label:"mk"
                         ~body:
                           [
                             slli x c100 3;
                             add x x r8;
                             addi x x a;
                             lw x x 0;
                             slli tmp r8 3;
                             add tmp tmp r7;
                             addi tmp tmp b;
                             lw tmp tmp 0;
                             mul x x tmp;
                             add acc acc x;
                           ]
                     @ [
                         slli x c100 3;
                         add x x r7;
                         addi x x c_base;
                         sw acc x 0;
                       ]))))
  in
  let init m =
    for i = 0 to 63 do
      Machine.poke m ~addr:(a + i) (i mod 9);
      Machine.poke m ~addr:(b + i) ((i * 7) mod 11)
    done
  in
  Gen.stream_of_program ~init program

let correlated () =
  let program =
    assemble
      (Gen.seed_rng ~state:x 0x1234
      @ [ li acc 0 ]
      @ Gen.forever ~label:"top"
          ~body:
            (Gen.xorshift ~state:x ~tmp
            @ [
                andi r7 x 1;
                (* first branch: random *)
                beq r7 0 "first_nt";
                addi acc acc 1;
                label "first_nt";
                addi acc acc 1;
                (* second branch: same condition — correlated *)
                beq r7 0 "second_nt";
                addi acc acc 1;
                label "second_nt";
                addi acc acc 1;
              ]))
  in
  Gen.stream_of_program program
