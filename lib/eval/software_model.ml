open Cobra
module Trace = Cobra_isa.Trace
module Text = Cobra_util.Text_render

type result = {
  design : string;
  workload : string;
  branches : int;
  mispredicts : int;
}

let accuracy r =
  if r.branches = 0 then 1.0
  else 1.0 -. (float_of_int r.mispredicts /. float_of_int r.branches)

let mpki_proxy r ~instructions = Cobra_util.Stats.mpki ~misses:r.mispredicts ~instructions

(* One branch per packet, in retired order, final-stage prediction, update
   immediately at commit of the very next event: the trace-based idiom. *)
let run ?insns ?observe (design : Designs.t) (workload : Cobra_workloads.Suite.entry) =
  let insns = Option.value insns ~default:(Experiment.default_insns ()) in
  let pl = Pipeline.create design.Designs.pipeline_config (design.Designs.make ()) in
  let width = design.Designs.pipeline_config.Pipeline.fetch_width in
  let stream = workload.Cobra_workloads.Suite.make () in
  let branches = ref 0 and mispredicts = ref 0 in
  let consumed = ref 0 in
  let continue_ = ref true in
  while !continue_ && !consumed < insns do
    match stream () with
    | None -> continue_ := false
    | Some ev ->
      incr consumed;
      (match ev.Trace.branch with
      | None -> ()
      | Some info ->
        incr branches;
        let tok = Pipeline.predict pl ~pc:ev.Trace.pc ~max_len:1 in
        let stages = Pipeline.stages pl tok in
        let final = (stages.(Array.length stages - 1)).(0) in
        let taken_pred =
          match final.Types.o_taken with
          | Some t -> t
          | None -> Types.is_unconditional info.Trace.kind
        in
        (match observe with Some f -> f ev ~taken_pred | None -> ());
        let target_pred = Option.value final.Types.o_target ~default:(-1) in
        let wrong =
          taken_pred <> info.Trace.taken
          || (info.Trace.taken
             && Types.is_unconditional info.Trace.kind
             && info.Trace.kind <> Types.Ret
             && target_pred <> info.Trace.target)
        in
        if wrong then incr mispredicts;
        let slots = Array.make width Types.no_branch in
        slots.(0) <-
          Types.resolved_branch ~kind:info.Trace.kind ~taken:taken_pred
            ~target:(if taken_pred then info.Trace.target else 0);
        let seq = Pipeline.fire pl tok ~slots ~packet_len:1 in
        let actual =
          Types.resolved_branch ~kind:info.Trace.kind ~taken:info.Trace.taken
            ~target:info.Trace.target
        in
        if wrong then Pipeline.mispredict pl ~seq ~slot:0 actual
        else Pipeline.resolve pl ~seq ~slot:0 actual;
        (* immediate update: the software-simulator idealisation *)
        Pipeline.commit pl)
  done;
  {
    design = design.Designs.name;
    workload = workload.Cobra_workloads.Suite.name;
    branches = !branches;
    mispredicts = !mispredicts;
  }

let comparison_report ?insns () =
  let workloads =
    List.map Cobra_workloads.Suite.find [ "gcc"; "mcf"; "x264"; "leela"; "exchange2" ]
  in
  let rows =
    List.concat_map
      (fun w ->
        List.map
          (fun d ->
            let sw = run ?insns d w in
            let hw = Experiment.run ?insns d w in
            let sw_acc = 100.0 *. accuracy sw in
            let hw_acc =
              100.0 *. Cobra_uarch.Perf.branch_accuracy hw.Experiment.perf
            in
            [
              sw.workload;
              sw.design;
              Text.float_cell ~decimals:2 sw_acc;
              Text.float_cell ~decimals:2 hw_acc;
              Printf.sprintf "%+.2f" (sw_acc -. hw_acc);
            ])
          Designs.all)
      workloads
  in
  Text.table
    ~title:
      "Software (trace-based) vs hardware-guided evaluation of the same composed pipelines \
       (paper Section II-B: software models mis-estimate, and the error is design-dependent)"
    ~header:[ "workload"; "design"; "sw acc%"; "hw acc%"; "sw - hw" ]
    ~rows ()
