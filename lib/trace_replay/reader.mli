(** Chunked streaming decoder for {!Btrace} files.

    The reader owns one fixed-size byte buffer (default 64 KiB) that it
    refills from the file as records are consumed — a multi-million-branch
    trace replays in constant memory, never materialized as a list. The
    format (binary vs text) is sniffed from the {!Btrace.magic} prefix.

    Every decode error is a [Failure] prefixed with the file path and
    carrying the byte offset (binary) or line number (text) of the
    corruption, so a poisoned trace is diagnosable and rejectable without
    taking the caller down. *)

type t

val open_file : ?buffer_size:int -> string -> t
(** Opens and sniffs the format. [buffer_size] is clamped to at least 512
    bytes (a record and a text line must fit in one window). Raises
    [Sys_error] when the file cannot be opened. *)

val format : t -> Btrace.format
val path : t -> string

val next : t -> Btrace.record option
(** The next record, or [None] at end of trace. Raises [Failure] on
    malformed input: truncated final record, corrupt tag byte, varint
    overflow, malformed text line, or a text line longer than the buffer. *)

val offset : t -> int
(** Byte offset of the next unconsumed input byte. *)

val seek : t -> int -> unit
(** Reposition the stream to an absolute byte offset previously obtained
    from {!offset} (record boundaries are the caller's responsibility —
    used with pipeline snapshots to resume a replay mid-trace). Discards
    the buffered window; [line] and [records_read] keep counting from
    their current values. *)

val line : t -> int
(** Lines consumed so far (text format; 0 for binary). *)

val records_read : t -> int

val close : t -> unit
(** Idempotent. *)

val with_file : ?buffer_size:int -> string -> (t -> 'a) -> 'a
(** Opens, applies, and always closes. *)

val fold : ?buffer_size:int -> string -> init:'a -> f:('a -> Btrace.record -> 'a) -> 'a
(** Stream the whole file through [f] in constant memory. *)

val load : ?buffer_size:int -> ?limit:int -> string -> Btrace.record list
(** Materializes up to [limit] records (default: all) — test and
    small-fixture convenience, not the replay path. *)

type detected = Branch_binary | Branch_text | Other

val detect : string -> detected
(** Sniff a file: the binary magic, the {!Btrace.text_header} line, or a
    first non-comment line that parses as a record mean a branch trace;
    anything else (including an unreadable path) is [Other] — the hook the
    CLI uses to distinguish branch traces from retired-path instruction
    traces. *)
