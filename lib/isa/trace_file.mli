(** Trace serialization — a CBP/championship-style interchange format.

    One event per line:
    {v
    <pc> <class> <next_pc> [B <kind> <taken> <target>] [M <addr>] [D <dst>] [S <src,src,...>]
    v}
    with all numbers in lowercase hex. Lines beginning with [#] are
    comments. This lets workload traces captured once (or imported from
    external tools) be replayed through the framework without the BRISC
    machine. *)

val write_channel : out_channel -> Trace.event list -> unit
val save : path:string -> Trace.event list -> unit

val read_channel : in_channel -> Trace.event list
(** Raises [Failure] naming the (1-based) line number, the reason, and the
    offending line on parse errors. Negative [D]/[S] register numbers are
    rejected. *)

val load : path:string -> Trace.event list

val load_stream : path:string -> Trace.stream
(** Loads eagerly, streams lazily. *)

val event_to_string : Trace.event -> string
val event_of_string : ?lnum:int -> string -> Trace.event option
(** [None] for blank/comment lines; [Failure] (naming [lnum] when given)
    on malformed input. *)
