lib/workloads/dhrystone.mli: Cobra_isa
