(** Saturating counters.

    Counters are represented as plain [int]s paired with an explicit bit
    width, matching how they are stored in predictor SRAMs. Unsigned counters
    live in [0, 2^bits - 1]; signed counters (perceptron weights, TAGE
    usefulness) live in [-2^(bits-1), 2^(bits-1) - 1]. *)

val max_value : bits:int -> int
(** Largest unsigned value representable, [2^bits - 1]. *)

val weakly_not_taken : bits:int -> int
(** [2^(bits-1) - 1], the canonical initialisation just below the taken
    threshold. *)

val weakly_taken : bits:int -> int
(** [2^(bits-1)]. *)

val is_taken : bits:int -> int -> bool
(** MSB set, i.e. value [>= 2^(bits-1)]. *)

val confidence : bits:int -> int -> int
(** Distance from the taken threshold; 0 means weakest. *)

val increment : bits:int -> int -> int
val decrement : bits:int -> int -> int

val update : bits:int -> int -> taken:bool -> int
(** Increment towards taken, decrement towards not-taken, saturating. *)

val signed_min : bits:int -> int
val signed_max : bits:int -> int

val update_signed : bits:int -> int -> dir:int -> int
(** [update_signed ~bits c ~dir] adds the sign of [dir] saturating into the
    signed range. *)

val is_valid : bits:int -> int -> bool
(** Whether an unsigned value is in range — handy for assertions. *)
