lib/eval/experiment.ml: Cobra Cobra_uarch Cobra_workloads Designs Fun List Option String Sys
