(** Generated global-history provider (paper Section IV-B3).

    A speculative shift register updated with the predicted directions of
    in-flight conditional branches. The composer keeps a committed base value
    (reflecting packets that have left the predictor pipeline) plus the bits
    contributed by still-pending packets, so squashes and divergence repairs
    rebuild the speculative value exactly. Snapshots for mispredict repair
    are stored per-packet in the history file, as in the paper's initial
    implementation. *)

type t

val create : bits:int -> t
val width : t -> int

val value : t -> Cobra_util.Bits.t
(** Current speculative history (base plus pending contributions). *)

val base : t -> Cobra_util.Bits.t

val push_pending : t -> bool list -> unit
(** Append a pending packet's predicted direction bits (oldest first). *)

val replace_pending : t -> depth:int -> bool list -> unit
(** Replace the bits of the pending packet at position [depth] (0 = oldest
    pending) — divergence repair when a later pipeline stage revises the
    packet's branch directions. *)

val drop_pending_from : t -> int -> unit
(** Squash pending packets at positions [>= depth]. *)

val commit_oldest : t -> unit
(** Fold the oldest pending packet's bits into the base (the packet fired
    into the history file). *)

val pending_count : t -> int

val restore : t -> Cobra_util.Bits.t -> unit
(** Mispredict repair: reset the base from a history-file snapshot and clear
    all pending contributions. *)

val storage : t -> Storage.t
(** The history register itself; snapshots are accounted to the history
    file. *)
