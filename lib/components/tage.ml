module Bitpack = Cobra_util.Bitpack
module Counter = Cobra_util.Counter
module Hashing = Cobra_util.Hashing
module Rng = Cobra_util.Rng
module Slab = Cobra_util.Slab
open Cobra

type table_spec = { history_length : int; index_bits : int; tag_bits : int }

type config = {
  name : string;
  latency : int;
  tables : table_spec list;
  counter_bits : int;
  u_bits : int;
  u_reset_period : int;
  seed : int;
  fetch_width : int;
}

let default ~name =
  let spec h = { history_length = h; index_bits = 9; tag_bits = 9 } in
  {
    name;
    latency = 3;
    tables = List.map spec [ 4; 6; 10; 16; 26; 42; 64 ];
    counter_bits = 3;
    u_bits = 2;
    u_reset_period = 1 lsl 18;
    seed = 0xc0b7a;
    fetch_width = 4;
  }

let storage_bits cfg =
  List.fold_left
    (fun acc t -> acc + ((1 lsl t.index_bits) * (1 + t.tag_bits + cfg.counter_bits + cfg.u_bits)))
    0 cfg.tables

(* Metadata layout per slot:
   hit(1) provider(4) provider_ctr(3) alt_valid(1) alt_dir(1) provider_u(2)
   base_valid(1) base_dir(1). *)
let slot_layout cfg = [ 1; 4; cfg.counter_bits; 1; 1; cfg.u_bits; 1; 1 ]
let meta_layout cfg = List.concat_map (fun _ -> slot_layout cfg) (List.init cfg.fetch_width Fun.id)

let make cfg =
  let ntables = List.length cfg.tables in
  if ntables < 1 || ntables > 15 then invalid_arg (cfg.name ^ ": 1..15 tables supported");
  if cfg.counter_bits < 2 then invalid_arg (cfg.name ^ ": counter_bits < 2");
  let specs = Array.of_list cfg.tables in
  (* slab layout: 3 header cells — [0]=update_count, [1]=rng state low 31
     bits, [2]=rng state high 33 bits — then per-table banks at formula
     base offsets, entry i of table t at stride 4 from its base:
     [+0]=valid, [+1]=tag, [+2]=ctr, [+3]=u *)
  let tbase = Array.make ntables 0 in
  let total =
    let off = ref 3 in
    Array.iteri
      (fun t s ->
        tbase.(t) <- !off;
        off := !off + ((1 lsl s.index_bits) * 4))
      specs;
    !off
  in
  let state = Slab.create total in
  let entry_off ~table i = tbase.(table) + (4 * i) in
  (* The Rng.t is scratch: its authoritative state lives in the header
     cells, loaded before and stored after every draw. *)
  let rng = Rng.create ~seed:cfg.seed in
  let store_rng () =
    let s = Rng.state rng in
    Slab.set state 1 (Int64.to_int (Int64.logand s 0x7FFFFFFFL));
    Slab.set state 2 (Int64.to_int (Int64.shift_right_logical s 31))
  in
  store_rng ();
  let rng_chance p =
    Rng.set_state rng
      (Int64.logor
         (Int64.of_int (Slab.get state 1))
         (Int64.shift_left (Int64.of_int (Slab.get state 2)) 31));
    let r = Rng.chance rng p in
    store_rng ();
    r
  in
  (* Per-table bank-decorrelation constants and, per query, the folded
     global-history hashes — slot-independent, so computed once per event
     rather than per (slot, table). *)
  let bank_const =
    Array.init ntables (fun t ->
        Hashing.fold_int (Hashing.mix2 t 17) ~width:62 ~bits:specs.(t).index_bits)
  in
  (* Scratch folds, refilled at the top of each predict/update: the folds
     run once per packet, the scratch turns the per-(slot, table) lookups
     into plain array reads. When every table shares an index (and tag)
     width — the common case — all lengths fold in one batched pass over
     the history instead of one [fold_xor_sub] walk per table. *)
  let fold_idx = Array.make ntables 0 in
  let fold_tag = Array.make ntables 0 in
  let uniform_fold_idx_bits =
    Array.for_all (fun s -> s.index_bits = specs.(0).index_bits) specs
  in
  let uniform_fold_tag_bits =
    Array.for_all (fun s -> s.tag_bits = specs.(0).tag_bits) specs
  in
  (* table order sorted by history length, as the batched fold requires *)
  let by_len =
    let idx = Array.init ntables Fun.id in
    Array.sort (fun a b -> compare specs.(a).history_length specs.(b).history_length) idx;
    idx
  in
  let sorted_lens = Array.map (fun i -> specs.(i).history_length) by_len in
  let fold_scratch = Array.make ntables 0 in
  let fill_batched (ctx : Context.t) ~bits out =
    Cobra_util.Bits.fold_xor_sub_multi ctx.Context.ghist ~lens:sorted_lens bits
      ~out:fold_scratch;
    for q = 0 to ntables - 1 do
      out.(by_len.(q)) <- fold_scratch.(q)
    done
  in
  (* The context snapshot travels with the packet, so its update/repair
     events carry the record predict already folded for: physical equality
     makes the refill free when no other packet was predicted in between
     (always true for single-packet hosts like trace replay). *)
  let last_folded : Context.t option ref = ref None in
  let fill_folds_uncached (ctx : Context.t) =
    if uniform_fold_idx_bits then fill_batched ctx ~bits:specs.(0).index_bits fold_idx
    else
      for t = 0 to ntables - 1 do
        let s = specs.(t) in
        fold_idx.(t) <- Context.folded_ghist ctx ~len:s.history_length ~bits:s.index_bits
      done;
    if uniform_fold_tag_bits && uniform_fold_idx_bits
       && specs.(0).tag_bits = specs.(0).index_bits
    then Array.blit fold_idx 0 fold_tag 0 ntables
    else if uniform_fold_tag_bits then fill_batched ctx ~bits:specs.(0).tag_bits fold_tag
    else
      for t = 0 to ntables - 1 do
        let s = specs.(t) in
        fold_tag.(t) <- Context.folded_ghist ctx ~len:s.history_length ~bits:s.tag_bits
      done
  in
  let fill_folds (ctx : Context.t) =
    match !last_folded with
    | Some c when c == ctx -> ()
    | _ ->
      last_folded := Some ctx;
      fill_folds_uncached ctx
  in
  let uniform_index_bits =
    Array.for_all (fun s -> s.index_bits = specs.(0).index_bits) specs
  in
  (* PC fold per slot: an int, not a per-slot closure. When the tables share
     an index width (the common case) the fold is computed once per slot;
     otherwise [index] re-folds for the table's own width. *)
  let pc_fold (ctx : Context.t) ~slot =
    Hashing.pc_index ~pc:(Context.slot_pc ctx slot) ~bits:specs.(0).index_bits
  in
  let index ctx ~slot ~pcv ~table =
    let p =
      if uniform_index_bits then pcv
      else Hashing.pc_index ~pc:(Context.slot_pc ctx slot) ~bits:specs.(table).index_bits
    in
    p lxor fold_idx.(table) lxor bank_const.(table)
  in
  let tag_hash (ctx : Context.t) ~slot ~table =
    let s = specs.(table) in
    Hashing.fold_int
      (Hashing.mix2
         (Hashing.pc_bits (Context.slot_pc ctx slot))
         (fold_tag.(table) + (table * 7919)))
      ~width:62 ~bits:s.tag_bits
  in
  let e_valid off = Slab.unsafe_get state off = 1 in
  let e_tag off = Slab.unsafe_get state (off + 1) in
  let e_ctr off = Slab.unsafe_get state (off + 2) in
  let e_u off = Slab.unsafe_get state (off + 3) in
  let lookup ctx ~slot ~pcv ~table =
    let off = entry_off ~table (index ctx ~slot ~pcv ~table) in
    if e_valid off && e_tag off = tag_hash ctx ~slot ~table then Some off else None
  in
  (* Longest-history hit and the next one below it. The scan threads all
     its state through arguments so no closure is allocated per slot. *)
  let rec provider_scan lookup pcv ctx slot t provider alt =
    if t < 0 then (provider, alt)
    else
      match lookup ctx ~slot ~pcv ~table:t with
      | Some off -> (
        match provider with
        | None -> provider_scan lookup pcv ctx slot (t - 1) (Some (t, off)) alt
        | Some _ -> (provider, Some (t, off)))
      | None -> provider_scan lookup pcv ctx slot (t - 1) provider alt
  in
  let find_provider pcv ctx ~slot = provider_scan lookup pcv ctx slot (ntables - 1) None None in
  let meta_bits = Bitpack.width_of (meta_layout cfg) in
  let packer = Bitpack.Packer.create ~width:meta_bits in
  let cursor = Bitpack.Cursor.create () in
  let taken_of_ctr c = Counter.is_taken ~bits:cfg.counter_bits c in
  let predict (ctx : Context.t) ~pred_in =
    let base =
      match pred_in with
      | [ p ] -> p
      | _ -> invalid_arg (cfg.name ^ ": expected exactly one predict_in")
    in
    fill_folds ctx;
    let pred = Array.make cfg.fetch_width Types.empty_opinion in
    let live = Context.live_bound ctx cfg.fetch_width in
    for slot = 0 to cfg.fetch_width - 1 do
      let bit = function Some true -> 1 | _ -> 0 in
      let valid = function Some _ -> 1 | None -> 0 in
      if slot >= live then begin
        (* dead slot: keep the declared meta layout *)
        Bitpack.Packer.add packer 0 ~bits:1;
        Bitpack.Packer.add packer 0 ~bits:4;
        Bitpack.Packer.add packer 0 ~bits:cfg.counter_bits;
        Bitpack.Packer.add packer 0 ~bits:1;
        Bitpack.Packer.add packer 0 ~bits:1;
        Bitpack.Packer.add packer 0 ~bits:cfg.u_bits;
        Bitpack.Packer.add packer 0 ~bits:1;
        Bitpack.Packer.add packer 0 ~bits:1
      end
      else begin
      let pcv = pc_fold ctx ~slot in
      let provider, alt = find_provider pcv ctx ~slot in
      let base_dir = base.(slot).Types.o_taken in
      match provider with
      | Some (p, off) ->
        let alt_dir = Option.map (fun (_, a_off) -> taken_of_ctr (e_ctr a_off)) alt in
        Bitpack.Packer.add packer 1 ~bits:1;
        Bitpack.Packer.add packer p ~bits:4;
        Bitpack.Packer.add packer (e_ctr off) ~bits:cfg.counter_bits;
        Bitpack.Packer.add packer (valid alt_dir) ~bits:1;
        Bitpack.Packer.add packer (bit alt_dir) ~bits:1;
        Bitpack.Packer.add packer (e_u off) ~bits:cfg.u_bits;
        Bitpack.Packer.add packer (valid base_dir) ~bits:1;
        Bitpack.Packer.add packer (bit base_dir) ~bits:1;
        if not (Types.unconditional_in base slot) then
          pred.(slot) <- Types.direction_hint ~taken:(taken_of_ctr (e_ctr off))
      | None ->
        Bitpack.Packer.add packer 0 ~bits:1;
        Bitpack.Packer.add packer 0 ~bits:4;
        Bitpack.Packer.add packer 0 ~bits:cfg.counter_bits;
        Bitpack.Packer.add packer 0 ~bits:1;
        Bitpack.Packer.add packer 0 ~bits:1;
        Bitpack.Packer.add packer 0 ~bits:cfg.u_bits;
        Bitpack.Packer.add packer (valid base_dir) ~bits:1;
        Bitpack.Packer.add packer (bit base_dir) ~bits:1
      end
    done;
    (pred, Bitpack.Packer.finish packer)
  in
  let graceful_u_decay () =
    Array.iteri
      (fun t s ->
        for i = 0 to (1 lsl s.index_bits) - 1 do
          let off = entry_off ~table:t i in
          Slab.unsafe_set state (off + 3) (Slab.unsafe_get state (off + 3) lsr 1)
        done)
      specs
  in
  let allocate pcv ev ~slot ~above ~taken =
    (* Find a non-useful entry in a longer-history table; throttle with the
       PRNG so allocations spread across tables (Seznec 2011). If every
       candidate is useful, age them all instead. *)
    let candidates = ref [] in
    for t = above to ntables - 1 do
      let off = entry_off ~table:t (index ev.Component.ctx ~slot ~pcv ~table:t) in
      if (not (e_valid off)) || e_u off = 0 then candidates := t :: !candidates
    done;
    match List.rev !candidates with
    | [] ->
      for t = above to ntables - 1 do
        let off = entry_off ~table:t (index ev.Component.ctx ~slot ~pcv ~table:t) in
        Slab.unsafe_set state (off + 3) (max 0 (e_u off - 1))
      done
    | first :: rest ->
      let chosen =
        (* Prefer the shortest candidate but sometimes skip ahead. *)
        match rest with
        | next :: _ when rng_chance 0.33 -> next
        | _ -> first
      in
      let off = entry_off ~table:chosen (index ev.Component.ctx ~slot ~pcv ~table:chosen) in
      Slab.unsafe_set state off 1;
      Slab.unsafe_set state (off + 1) (tag_hash ev.Component.ctx ~slot ~table:chosen);
      Slab.unsafe_set state (off + 2)
        (if taken then Counter.weakly_taken ~bits:cfg.counter_bits
         else Counter.weakly_not_taken ~bits:cfg.counter_bits);
      Slab.unsafe_set state (off + 3) 0
  in
  let update (ev : Component.event) =
    Bitpack.Cursor.reset cursor ev.meta;
    (* The scratch folds are only needed (and only filled) when the packet
       holds a conditional branch; the memoized context makes the refill a
       lookup, not a recomputation. *)
    let folds_filled = ref false in
    for slot = 0 to cfg.fetch_width - 1 do
      let hit = Bitpack.Cursor.take cursor ~bits:1 in
      let provider = Bitpack.Cursor.take cursor ~bits:4 in
      let pctr = Bitpack.Cursor.take cursor ~bits:cfg.counter_bits in
      let alt_valid = Bitpack.Cursor.take cursor ~bits:1 in
      let alt_dir = Bitpack.Cursor.take cursor ~bits:1 in
      let pu = Bitpack.Cursor.take cursor ~bits:cfg.u_bits in
      let base_valid = Bitpack.Cursor.take cursor ~bits:1 in
      let base_dir = Bitpack.Cursor.take cursor ~bits:1 in
      let (r : Types.resolved) = ev.slots.(slot) in
      if Types.cond_branch r then begin
        Slab.set state 0 (Slab.get state 0 + 1);
        if Slab.get state 0 mod cfg.u_reset_period = 0 then graceful_u_decay ();
        if not !folds_filled then begin
          fill_folds ev.ctx;
          folds_filled := true
        end;
        let taken = r.r_taken in
        let provider_pred = if hit = 1 then Some (taken_of_ctr pctr) else None in
        let effective =
          match provider_pred with
          | Some d -> Some d
          | None -> if base_valid = 1 then Some (base_dir = 1) else None
        in
        let pcv = pc_fold ev.ctx ~slot in
        (match provider_pred with
        | Some pdir ->
          let off = entry_off ~table:provider (index ev.ctx ~slot ~pcv ~table:provider) in
          if e_valid off && e_tag off = tag_hash ev.ctx ~slot ~table:provider then begin
            Slab.unsafe_set state (off + 2) (Counter.update ~bits:cfg.counter_bits pctr ~taken);
            (* Usefulness trains when provider and altpred disagreed. *)
            let altpred =
              if alt_valid = 1 then Some (alt_dir = 1)
              else if base_valid = 1 then Some (base_dir = 1)
              else None
            in
            match altpred with
            | Some a when a <> pdir ->
              Slab.unsafe_set state (off + 3)
                (if pdir = taken then min (Counter.max_value ~bits:cfg.u_bits) (pu + 1)
                 else max 0 (pu - 1))
            | _ -> ()
          end
        | None -> ());
        (* Allocate on a wrong effective prediction, in tables above the
           provider (or anywhere when nothing hit). *)
        let wrong = match effective with Some d -> d <> taken | None -> true in
        let can_extend = hit = 0 || provider < ntables - 1 in
        if wrong && can_extend then
          allocate pcv ev ~slot ~above:(if hit = 1 then provider + 1 else 0) ~taken
      end
    done
  in
  let storage =
    Storage.make ~sram_bits:(storage_bits cfg)
      ~logic_gates:(cfg.fetch_width * ntables * 120)
      ()
  in
  Component.make ~name:cfg.name ~family:Component.Tage ~latency:cfg.latency ~meta_bits ~storage
    ~state ~predict ~update ()
