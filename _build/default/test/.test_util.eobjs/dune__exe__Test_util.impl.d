test/test_util.ml: Alcotest Array Bitpack Bits Circular_buffer Cobra_util Counter Fun Gen Hashing List Option QCheck QCheck_alcotest Rng Stats
