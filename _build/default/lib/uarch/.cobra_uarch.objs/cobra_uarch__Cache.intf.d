lib/uarch/cache.mli:
