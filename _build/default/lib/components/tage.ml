module Bitpack = Cobra_util.Bitpack
module Counter = Cobra_util.Counter
module Hashing = Cobra_util.Hashing
module Rng = Cobra_util.Rng
open Cobra

type table_spec = { history_length : int; index_bits : int; tag_bits : int }

type config = {
  name : string;
  latency : int;
  tables : table_spec list;
  counter_bits : int;
  u_bits : int;
  u_reset_period : int;
  seed : int;
  fetch_width : int;
}

let default ~name =
  let spec h = { history_length = h; index_bits = 9; tag_bits = 9 } in
  {
    name;
    latency = 3;
    tables = List.map spec [ 4; 6; 10; 16; 26; 42; 64 ];
    counter_bits = 3;
    u_bits = 2;
    u_reset_period = 1 lsl 18;
    seed = 0xc0b7a;
    fetch_width = 4;
  }

type entry = { mutable tag : int; mutable ctr : int; mutable u : int; mutable valid : bool }

let storage_bits cfg =
  List.fold_left
    (fun acc t -> acc + ((1 lsl t.index_bits) * (1 + t.tag_bits + cfg.counter_bits + cfg.u_bits)))
    0 cfg.tables

(* Metadata layout per slot:
   hit(1) provider(4) provider_ctr(3) alt_valid(1) alt_dir(1) provider_u(2)
   base_valid(1) base_dir(1). *)
let slot_layout cfg = [ 1; 4; cfg.counter_bits; 1; 1; cfg.u_bits; 1; 1 ]
let meta_layout cfg = List.concat_map (fun _ -> slot_layout cfg) (List.init cfg.fetch_width Fun.id)

let make cfg =
  let ntables = List.length cfg.tables in
  if ntables < 1 || ntables > 15 then invalid_arg (cfg.name ^ ": 1..15 tables supported");
  if cfg.counter_bits < 2 then invalid_arg (cfg.name ^ ": counter_bits < 2");
  let specs = Array.of_list cfg.tables in
  let banks =
    Array.map
      (fun s ->
        Array.init (1 lsl s.index_bits) (fun _ -> { tag = 0; ctr = 0; u = 0; valid = false }))
      specs
  in
  let rng = Rng.create ~seed:cfg.seed in
  let update_count = ref 0 in
  (* Per-table bank-decorrelation constants and, per query, the folded
     global-history hashes — slot-independent, so computed once per event
     rather than per (slot, table). *)
  let bank_const =
    Array.init ntables (fun t ->
        Hashing.fold_int (Hashing.mix2 t 17) ~width:62 ~bits:specs.(t).index_bits)
  in
  let make_folds (ctx : Context.t) =
    Array.init ntables (fun t ->
        let s = specs.(t) in
        ( Hashing.folded_history ctx.ghist ~len:s.history_length ~bits:s.index_bits,
          Hashing.folded_history ctx.ghist ~len:s.history_length ~bits:s.tag_bits ))
  in
  let uniform_index_bits =
    Array.for_all (fun s -> s.index_bits = specs.(0).index_bits) specs
  in
  (* PC fold per slot: computed once when all tables share an index width. *)
  let pc_fold (ctx : Context.t) ~slot =
    if uniform_index_bits then begin
      let v = Hashing.pc_index ~pc:(Context.slot_pc ctx slot) ~bits:specs.(0).index_bits in
      fun _t -> v
    end
    else fun t -> Hashing.pc_index ~pc:(Context.slot_pc ctx slot) ~bits:specs.(t).index_bits
  in
  let index folds pcf ~table = pcf table lxor fst folds.(table) lxor bank_const.(table) in
  let tag_hash folds (ctx : Context.t) ~slot ~table =
    let s = specs.(table) in
    Hashing.fold_int
      (Hashing.mix2
         (Hashing.pc_bits (Context.slot_pc ctx slot))
         (snd folds.(table) + (table * 7919)))
      ~width:62 ~bits:s.tag_bits
  in
  let lookup folds pcf ctx ~slot ~table =
    let e = banks.(table).(index folds pcf ~table) in
    if e.valid && e.tag = tag_hash folds ctx ~slot ~table then Some e else None
  in
  (* Longest-history hit and the next one below it. *)
  let find_provider folds pcf ctx ~slot =
    let rec scan t provider alt =
      if t < 0 then (provider, alt)
      else
        match lookup folds pcf ctx ~slot ~table:t with
        | Some e -> (
          match provider with
          | None -> scan (t - 1) (Some (t, e)) alt
          | Some _ -> (provider, Some (t, e)))
        | None -> scan (t - 1) provider alt
    in
    scan (ntables - 1) None None
  in
  let meta_bits = Bitpack.width_of (meta_layout cfg) in
  let taken_of_ctr c = Counter.is_taken ~bits:cfg.counter_bits c in
  let predict (ctx : Context.t) ~pred_in =
    let base =
      match pred_in with
      | [ p ] -> p
      | _ -> invalid_arg (cfg.name ^ ": expected exactly one predict_in")
    in
    let fields = ref [] in
    let folds = make_folds ctx in
    let pred =
      Array.init cfg.fetch_width (fun slot ->
          let pcf = pc_fold ctx ~slot in
          let provider, alt = find_provider folds pcf ctx ~slot in
          let base_dir = base.(slot).Types.o_taken in
          let bit = function Some true -> 1 | _ -> 0 in
          let valid = function Some _ -> 1 | None -> 0 in
          match provider with
          | Some (p, e) ->
            let alt_dir = Option.map (fun (_, (a : entry)) -> taken_of_ctr a.ctr) alt in
            fields :=
              List.rev
                [
                  (1, 1);
                  (p, 4);
                  (e.ctr, cfg.counter_bits);
                  (valid alt_dir, 1);
                  (bit alt_dir, 1);
                  (e.u, cfg.u_bits);
                  (valid base_dir, 1);
                  (bit base_dir, 1);
                ]
              @ !fields;
            if Types.unconditional_in base slot then Types.empty_opinion
            else { Types.empty_opinion with o_taken = Some (taken_of_ctr e.ctr) }
          | None ->
            fields :=
              List.rev
                [ (0, 1); (0, 4); (0, cfg.counter_bits); (0, 1); (0, 1); (0, cfg.u_bits);
                  (valid base_dir, 1); (bit base_dir, 1) ]
              @ !fields;
            Types.empty_opinion)
    in
    (pred, Bitpack.pack ~width:meta_bits (List.rev !fields))
  in
  let graceful_u_decay () =
    Array.iter (fun bank -> Array.iter (fun e -> e.u <- e.u lsr 1) bank) banks
  in
  let allocate folds pcf ev ~slot ~above ~taken =
    (* Find a non-useful entry in a longer-history table; throttle with the
       PRNG so allocations spread across tables (Seznec 2011). If every
       candidate is useful, age them all instead. *)
    let candidates = ref [] in
    for t = above to ntables - 1 do
      let e = banks.(t).(index folds pcf ~table:t) in
      if (not e.valid) || e.u = 0 then candidates := t :: !candidates
    done;
    match List.rev !candidates with
    | [] ->
      for t = above to ntables - 1 do
        let e = banks.(t).(index folds pcf ~table:t) in
        e.u <- max 0 (e.u - 1)
      done
    | first :: rest ->
      let chosen =
        (* Prefer the shortest candidate but sometimes skip ahead. *)
        match rest with
        | next :: _ when Rng.chance rng 0.33 -> next
        | _ -> first
      in
      let e = banks.(chosen).(index folds pcf ~table:chosen) in
      e.valid <- true;
      e.tag <- tag_hash folds ev.Component.ctx ~slot ~table:chosen;
      e.ctr <-
        (if taken then Counter.weakly_taken ~bits:cfg.counter_bits
         else Counter.weakly_not_taken ~bits:cfg.counter_bits);
      e.u <- 0
  in
  let update (ev : Component.event) =
    let fields = Bitpack.unpack ev.meta (meta_layout cfg) in
    let folds = lazy (make_folds ev.ctx) in
    let rec per_slot slot = function
      | hit :: provider :: pctr :: alt_valid :: alt_dir :: pu :: base_valid :: base_dir :: rest
        ->
        let (r : Types.resolved) = ev.slots.(slot) in
        if r.r_is_branch && r.r_kind = Types.Cond then begin
          incr update_count;
          if !update_count mod cfg.u_reset_period = 0 then graceful_u_decay ();
          let taken = r.r_taken in
          let provider_pred = if hit = 1 then Some (taken_of_ctr pctr) else None in
          let effective =
            match provider_pred with
            | Some d -> Some d
            | None -> if base_valid = 1 then Some (base_dir = 1) else None
          in
          let pcf = pc_fold ev.ctx ~slot in
          (match provider_pred with
          | Some pdir ->
            let e = banks.(provider).(index (Lazy.force folds) pcf ~table:provider) in
            if e.valid && e.tag = tag_hash (Lazy.force folds) ev.ctx ~slot ~table:provider then begin
              e.ctr <- Counter.update ~bits:cfg.counter_bits pctr ~taken;
              (* Usefulness trains when provider and altpred disagreed. *)
              let altpred =
                if alt_valid = 1 then Some (alt_dir = 1)
                else if base_valid = 1 then Some (base_dir = 1)
                else None
              in
              match altpred with
              | Some a when a <> pdir ->
                e.u <-
                  (if pdir = taken then min (Counter.max_value ~bits:cfg.u_bits) (pu + 1)
                   else max 0 (pu - 1))
              | _ -> ()
            end
          | None -> ());
          (* Allocate on a wrong effective prediction, in tables above the
             provider (or anywhere when nothing hit). *)
          let wrong = match effective with Some d -> d <> taken | None -> true in
          let can_extend = hit = 0 || provider < ntables - 1 in
          if wrong && can_extend then
            allocate (Lazy.force folds) pcf ev ~slot
              ~above:(if hit = 1 then provider + 1 else 0) ~taken
        end;
        per_slot (slot + 1) rest
      | [] -> ()
      | _ -> assert false
    in
    per_slot 0 fields
  in
  let storage =
    Storage.make ~sram_bits:(storage_bits cfg)
      ~logic_gates:(cfg.fetch_width * ntables * 120)
      ()
  in
  Component.make ~name:cfg.name ~family:Component.Tage ~latency:cfg.latency ~meta_bits ~storage
    ~predict ~update ()
