lib/components/tourney.ml: Array Cobra Cobra_util Component Context Fun List Printf Storage Types
