lib/synth/energy.mli: Cobra Tech
