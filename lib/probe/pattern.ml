module Rng = Cobra_util.Rng
module Debruijn = Cobra_util.Debruijn
module Btrace = Cobra_trace_replay.Btrace
module Writer = Cobra_trace_replay.Writer

type stream = {
  s_records : Btrace.record array;
  s_warmup : int;
  s_metric_pc : int option;
}

type t = {
  p_name : string;
  p_doc : string;
  p_unit : string;
  p_gen : level:int -> seed:int -> stream;
}

(* Probe PCs live in distinct, recognisable ranges so traces are easy to
   read; every record is a gap-0 conditional branch (pure direction
   stress, one branch per instruction). *)
let ladder_pc = 0x4000
let corr_pc_a = 0x4100
let corr_pc_fill = 0x4200
let corr_pc_b = 0x4300
let loop_pc = 0x4400
let phase_pc = 0x4500
let alias_base = 0x5000
let tag_base = 0x8000

let cond ~pc ~taken = Btrace.cond ~pc ~taken ()

let of_list ~warmup ~metric_pc records =
  { s_records = Array.of_list records; s_warmup = warmup; s_metric_pc = metric_pc }

(* --- history-length ladder ---------------------------------------------------- *)

(* Level k: one branch follows a B(2,k) de Bruijn cycle. Every k-window is
   unique, so a predictor with usable history h predicts perfectly when
   k <= h and is pinned near 50% once k > h: the capacity edge is h + 1.
   The seed rotates the starting phase of the cycle (the language of
   windows is unchanged, so the expected response is seed-invariant). *)
let gen_ladder ~level ~seed =
  if level < 1 || level > 16 then invalid_arg "probe ladder: level (order) in [1,16]";
  let seq = Debruijn.sequence ~order:level in
  let period = Array.length seq in
  let rot = Rng.int (Rng.create ~seed:(seed lxor 0x1adde5)) period in
  let warmup_periods = max 3 ((96 + period - 1) / period) in
  let measure_periods = max 2 ((128 + period - 1) / period) in
  let total = (warmup_periods + measure_periods) * period in
  let records =
    List.init total (fun i -> cond ~pc:ladder_pc ~taken:(Debruijn.bit seq (i + rot)))
  in
  of_list ~warmup:(warmup_periods * period) ~metric_pc:(Some ladder_pc) records

(* --- correlated-pair ladder --------------------------------------------------- *)

(* Level d: per period, branch A goes a random way, d-1 always-taken
   fillers push it down the global history, then branch B repeats A's
   outcome. At B's prediction A sits at history depth exactly d, so an
   ideal predictor with usable history h captures the correlation iff
   d <= h: the edge is h + 1. *)
let gen_corr ~level ~seed =
  if level < 1 then invalid_arg "probe corr: level (distance) >= 1";
  let d = level in
  let rng = Rng.create ~seed:(seed lxor 0xc0bbe1) in
  let period_len = d + 1 in
  let budget = 36_000 in
  let periods = max 80 (min 600 (budget / period_len)) in
  let warmup_periods = periods * 2 / 3 in
  let period () =
    let a = Rng.bool rng in
    (cond ~pc:corr_pc_a ~taken:a
    :: List.init (d - 1) (fun _ -> cond ~pc:corr_pc_fill ~taken:true))
    @ [ cond ~pc:corr_pc_b ~taken:a ]
  in
  let records = List.concat (List.init periods (fun _ -> period ())) in
  of_list ~warmup:(warmup_periods * period_len) ~metric_pc:(Some corr_pc_b) records

(* --- loop-trip-count scan ----------------------------------------------------- *)

(* Level T: one branch behaves as a loop of period T (T-1 taken, then one
   not-taken exit). When predicting the exit the previous not-taken sits at
   history depth exactly T, so a history predictor is exact iff T <= h
   (edge h + 1), while a loop predictor is exact while the trip count
   T - 1 fits its iteration counter (edge 2^count_bits + 1). Deterministic:
   the loop phenomenon is the period itself, not the data. *)
let gen_loop ~level ~seed:_ =
  if level < 2 then invalid_arg "probe loop: level (period) >= 2";
  let t = level in
  let warmup_periods = max 10 ((256 + t - 1) / t) in
  let measure_periods = max 5 ((128 + t - 1) / t) in
  let period = List.init t (fun i -> cond ~pc:loop_pc ~taken:(i < t - 1)) in
  let records = List.concat (List.init (warmup_periods + measure_periods) (fun _ -> period)) in
  of_list ~warmup:(warmup_periods * t) ~metric_pc:(Some loop_pc) records

(* --- phase-change storm ------------------------------------------------------- *)

(* Level p: one branch flips bias every p executions (p taken, p not-taken,
   repeat). A c-bit saturated counter pays exactly 2^(c-1) mispredicts per
   flip: accuracy is exactly 1 - 2^(c-1)/p. A history predictor sees the
   flip coming once p fits its window and pays at most one mispredict per
   flip. Deterministic. *)
let gen_phase ~level ~seed:_ =
  if level < 2 then invalid_arg "probe phase: level (phase length) >= 2";
  let p = level in
  let warmup_phases = 4 in
  let measure_phases = 20 in
  let phase taken = List.init p (fun _ -> cond ~pc:phase_pc ~taken) in
  let records =
    List.concat
      (List.init (warmup_phases + measure_phases) (fun i -> phase (i land 1 = 0)))
  in
  of_list ~warmup:(warmup_phases * p) ~metric_pc:(Some phase_pc) records

(* --- set-aliasing sweep ------------------------------------------------------- *)

(* Level N: N branch sites at PC stride 4 with alternating fixed biases,
   visited round-robin in site order. Once N exceeds a PC-indexed table's
   capacity the fold maps conflicting sites onto shared counters; a 2-bit
   counter shared by two alternating opposite-bias sites settles into one
   of two period-2 orbits fixed by which site is visited first (2 misses
   per round when the first-visited site is taken-biased, 1 otherwise), so
   the expected accuracy is exactly computable from the declared index
   function. Deterministic (the site set IS the phenomenon; a seed-rotated
   start would select between the two orbits and break exactness). *)
let alias_site_pc i = alias_base + (4 * i)
let alias_site_bias i = i land 1 = 0

let gen_alias ~level ~seed:_ =
  if level < 2 then invalid_arg "probe alias: level (sites) >= 2";
  let n = level in
  let rounds_warm = 6 and rounds_meas = 6 in
  let round () =
    List.init n (fun i -> cond ~pc:(alias_site_pc i) ~taken:(alias_site_bias i))
  in
  let records = List.concat (List.init (rounds_warm + rounds_meas) (fun _ -> round ())) in
  of_list ~warmup:(rounds_warm * n) ~metric_pc:None records

(* --- tag-width stressor ------------------------------------------------------- *)

(* Level N: N always-taken sites at PC stride 4, visited in a seeded
   shuffled (but fixed) order — the working-set stress for tagged tables.
   Contiguous PCs keep the index fold collision-free up to the table's
   capacity E, so residency is exactly the pigeonhole story: for N <= E
   every site owns its entry (accuracy 1 after warmup); each site beyond E
   contests one entry, and an allocate-on-miss tagged table ping-pongs
   ownership so both members of a contested pair abstain (falling to the
   not-taken default, wrong for taken-biased sites) on every visit. The
   expected accuracy is 1 - 2(N - E)/N, crossing the collapse threshold
   just past E — asserted as an envelope (E, 2E]. All-taken biases keep
   untagged counter tables trivially correct, isolating the tag/allocation
   machinery as the only thing under test. *)
let tag_site_pc i = tag_base + (4 * i)

let gen_tag ~level ~seed =
  if level < 2 then invalid_arg "probe tag: level (sites) >= 2";
  let n = level in
  let rng = Rng.create ~seed:(seed lxor 0x7a95) in
  let order = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  let rounds_warm = 8 and rounds_meas = 8 in
  let round () = List.init n (fun j -> cond ~pc:(tag_site_pc order.(j)) ~taken:true) in
  let records = List.concat (List.init (rounds_warm + rounds_meas) (fun _ -> round ())) in
  of_list ~warmup:(rounds_warm * n) ~metric_pc:None records

(* --- catalogue ---------------------------------------------------------------- *)

let all =
  [
    {
      p_name = "ladder";
      p_doc = "de Bruijn history-length ladder: accuracy collapses at usable history + 1";
      p_unit = "order";
      p_gen = gen_ladder;
    };
    {
      p_name = "corr";
      p_doc = "correlated-pair ladder: outcome carried at history depth = level";
      p_unit = "distance";
      p_gen = gen_corr;
    };
    {
      p_name = "loop";
      p_doc = "loop-trip-count scan: periodic exit at history depth = period";
      p_unit = "period";
      p_gen = gen_loop;
    };
    {
      p_name = "phase";
      p_doc = "phase-change storm: bias flips every level executions";
      p_unit = "phase-len";
      p_gen = gen_phase;
    };
    {
      p_name = "alias";
      p_doc = "set-aliasing sweep: conflicting-bias sites vs table capacity";
      p_unit = "sites";
      p_gen = gen_alias;
    };
    {
      p_name = "tag";
      p_doc = "tag-width stressor: shuffled fixed-bias working set vs tagged capacity";
      p_unit = "sites";
      p_gen = gen_tag;
    };
  ]

let names = List.map (fun p -> p.p_name) all

let find name =
  let n = String.lowercase_ascii (String.trim name) in
  match List.find_opt (fun p -> String.equal p.p_name n) all with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown probe %S (valid probes: %s)" name (String.concat ", " names))

let find_exn name = match find name with Ok p -> p | Error m -> failwith m

(* --- trace plumbing ----------------------------------------------------------- *)

let digest stream =
  let buf = Buffer.create (Array.length stream.s_records * 4) in
  Array.iter (fun r -> Btrace.encode_record buf r) stream.s_records;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let to_trace_file ?format ~path stream =
  Writer.with_file ?format path (fun w ->
      Array.iter (fun r -> Writer.add w r) stream.s_records)

let source stream =
  let i = ref 0 in
  fun () ->
    if !i >= Array.length stream.s_records then None
    else begin
      let r = stream.s_records.(!i) in
      incr i;
      Some r
    end
