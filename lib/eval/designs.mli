(** The three COBRA-generated predictor designs of the paper (Table I,
    Fig 7):

    {v
    TAGE-L:  LOOP_3 > TAGE_3 > BTB_2 > BIM_2 > UBTB_1
    B2:      GTAG_3 > BTB_2 > BIM_2
    Tourney: TOURNEY_3 > [GBIM_2 > BTB_2, LBIM_2]
    v}

    Every call to [make] elaborates fresh (untrained) components, so a
    design can be instantiated once per experiment run. *)

type t = {
  name : string;
  paper_storage_kb : float;  (** Table I's storage column *)
  paper_rows : string list;  (** Table I's description column *)
  make : unit -> Cobra.Topology.t;
  pipeline_config : Cobra.Pipeline.config;
}

val tourney : t
val b2 : t
val tage_l : t

val gshare_only : t
(** A single-component gshare design — the minimum-work floor of the
    [bench perf] regression suite. Not part of {!all} (it is not one of the
    paper's designs). *)

val all : t list
(** Table I order: Tourney, B2, TAGE-L. *)

val find : string -> t
(** Raises [Not_found]. *)

val pipeline : t -> Cobra.Pipeline.t
(** Elaborate a fresh pipeline for the design. *)

val tage_l_with_latency : int -> t
(** The TAGE-L design with the TAGE sub-component's latency overridden —
    the paper's Section VI-A physical-design experiment. The rest of the
    topology is untouched, demonstrating that latency changes are local to
    a sub-component. *)

val direction_state_kb : t -> float
(** Storage of the direction-prediction state (counter tables, tagged
    tables, selector, loop entries, histories) excluding BTB targets — the
    convention that matches Table I's storage column. *)
