module Bitpack = Cobra_util.Bitpack
module Bitops = Cobra_util.Bitops
module Hashing = Cobra_util.Hashing
open Cobra

type config = {
  name : string;
  latency : int;
  sets : int;
  ways : int;
  tag_bits : int;
  fetch_width : int;
}

let default ~name =
  { name; latency = 2; sets = 512; ways = 4; tag_bits = 14; fetch_width = 4 }

let entries cfg = cfg.sets * cfg.ways

type entry = { mutable valid : bool; mutable tag : int; mutable target : int;
               mutable kind : Types.branch_kind }

(* Metadata layout: per slot, hit flag + hit way. *)
let way_bits cfg = max 1 (Bitops.bits_needed cfg.ways)
let meta_layout cfg = List.concat_map (fun _ -> [ 1; way_bits cfg ]) (List.init cfg.fetch_width Fun.id)

let target_bits = 48

let make cfg =
  if not (Bitops.is_power_of_two cfg.sets) then
    invalid_arg (cfg.name ^ ": sets must be a power of two");
  if cfg.ways < 1 then invalid_arg (cfg.name ^ ": ways < 1");
  let set_bits = Bitops.log2_exact cfg.sets in
  let table =
    Array.init cfg.sets (fun _ ->
        Array.init cfg.ways (fun _ -> { valid = false; tag = 0; target = 0; kind = Types.Cond }))
  in
  (* Round-robin replacement pointer per set. *)
  let replace = Array.make cfg.sets 0 in
  let set_of pc = Hashing.pc_index ~pc ~bits:set_bits in
  let tag_of pc = Hashing.fold_int (Hashing.mix2 (Hashing.pc_bits pc) 0) ~width:62 ~bits:cfg.tag_bits in
  (* A ref-based scan: an inner recursive closure would heap-allocate per
     lookup, and this runs per slot per predict. *)
  let lookup pc =
    let set = table.(set_of pc) and tag = tag_of pc in
    let hit = ref (-1) in
    let w = ref 0 in
    while !hit < 0 && !w < cfg.ways do
      let e = set.(!w) in
      if e.valid && e.tag = tag then hit := !w;
      incr w
    done;
    if !hit < 0 then None else Some !hit
  in
  let meta_bits = Bitpack.width_of (meta_layout cfg) in
  let packer = Bitpack.Packer.create ~width:meta_bits in
  let cursor = Bitpack.Cursor.create () in
  let predict (ctx : Context.t) ~pred_in:_ =
    let pred = Array.make cfg.fetch_width Types.empty_opinion in
    let live = Context.live_bound ctx cfg.fetch_width in
    for slot = 0 to cfg.fetch_width - 1 do
      let pc = Context.slot_pc ctx slot in
      match (if slot < live then lookup pc else None) with
      | Some w ->
        Bitpack.Packer.add packer 1 ~bits:1;
        Bitpack.Packer.add packer w ~bits:(way_bits cfg);
        let e = table.(set_of pc).(w) in
        pred.(slot) <-
          {
            Types.o_branch = Some true;
            o_kind = Some e.kind;
            o_taken = (if Types.is_unconditional e.kind then Some true else None);
            o_target = Some e.target;
          }
      | None ->
        Bitpack.Packer.add packer 0 ~bits:1;
        Bitpack.Packer.add packer 0 ~bits:(way_bits cfg)
    done;
    (pred, Bitpack.Packer.finish packer)
  in
  let update (ev : Component.event) =
    Bitpack.Cursor.reset cursor ev.meta;
    for slot = 0 to cfg.fetch_width - 1 do
      let hit = Bitpack.Cursor.take cursor ~bits:1 in
      let way = Bitpack.Cursor.take cursor ~bits:(way_bits cfg) in
      let (r : Types.resolved) = ev.slots.(slot) in
      (* Allocate/refresh entries for branches observed taken; a branch the
         BTB has never seen taken cannot redirect fetch and need not
         occupy a way. *)
      if r.r_is_branch && r.r_taken then begin
        let pc = Context.slot_pc ev.ctx slot in
        let set_idx = set_of pc in
        let set = table.(set_idx) in
        let w =
          if hit = 1 then way
          else begin
            (* Prefer an invalid way, else round-robin replacement. *)
            let invalid = ref (-1) in
            let i = ref 0 in
            while !invalid < 0 && !i < cfg.ways do
              if not set.(!i).valid then invalid := !i;
              incr i
            done;
            if !invalid >= 0 then !invalid
            else begin
              let i = replace.(set_idx) in
              replace.(set_idx) <- (i + 1) mod cfg.ways;
              i
            end
          end
        in
        let e = set.(w) in
        e.valid <- true;
        e.tag <- tag_of pc;
        e.target <- r.r_target;
        e.kind <- r.r_kind
      end
    done
  in
  let entry_bits = 1 + cfg.tag_bits + target_bits + 3 in
  let storage =
    Storage.make
      ~sram_bits:(entries cfg * entry_bits)
      ~flop_bits:(cfg.sets * Bitops.bits_needed (max 2 cfg.ways))
      ~logic_gates:(cfg.fetch_width * cfg.ways * 60)
      ()
  in
  Component.make ~name:cfg.name ~family:Component.Btb ~latency:cfg.latency ~meta_bits ~storage
    ~predict ~update ()
