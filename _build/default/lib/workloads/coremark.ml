open Cobra_isa
open Program

let description = "CoreMark-like: list find + matrix + state machine, hammock-rich"

let x = 5
let tmp = 6
let ptr = 10
let v = 11
let t0 = 12
let t1 = 13
let acc = 14
let st = 15 (* state machine state *)
let i = 28
let j_reg = 29

(* memory: 64-entry linked list (next, value), 8x8 matrices *)
let list_base = 0x200
let mat_a = 0x400
let mat_b = 0x480

(* [if (v < 0) v = -v]: a 1-instruction hammock (short forward branch). *)
let abs_hammock value =
  [ bge value 0 (Printf.sprintf "abs_%d" value); sub value 0 value;
    label (Printf.sprintf "abs_%d" value) ]

(* [if (v > 255) v = 255]: clamp hammock. *)
let clamp_hammock value limit_reg lbl =
  [ blt value limit_reg lbl; add value limit_reg 0; label lbl ]

let program =
  assemble
    (Gen.seed_rng ~state:x 0xC03E
    @ [ li acc 0; li st 0 ]
    @ Gen.forever ~label:"bench"
        ~body:
          ((* phase 1: walk the list, accumulate |v|, count matches *)
           [ li ptr list_base; li i 64; label "list_loop"; lw v ptr 1 ]
          @ abs_hammock v
          @ [
              add acc acc v;
              lw ptr ptr 0;
              addi i i (-1);
              bne i 0 "list_loop";
            ]
          (* phase 2: matrix row sums with a clamp hammock *)
          @ [ li i 0; label "mat_outer"; li j_reg 0; li t1 0; label "mat_inner" ]
          @ [
              slli t0 i 3;
              add t0 t0 j_reg;
              addi t0 t0 mat_a;
              lw t0 t0 0;
              add t1 t1 t0;
              addi j_reg j_reg 1;
              slti t0 j_reg 8;
              bne t0 0 "mat_inner";
            ]
          @ [ li t0 255 ]
          @ clamp_hammock t1 t0 "clamp1"
          @ [
              slli t0 i 3;
              addi t0 t0 mat_b;
              sw t1 t0 0;
              addi i i 1;
              slti t0 i 8;
              bne t0 0 "mat_outer";
            ]
          (* phase 3: state machine over pseudo-random input *)
          @ [ li i 16; label "sm_loop" ]
          @ Gen.xorshift ~state:x ~tmp
          @ [
              andi t0 x 3;
              (* switch (state, input) *)
              beq st 0 "sm_s0";
              slti t1 st 2;
              bne t1 0 "sm_s1";
              j "sm_s2";
              label "sm_s0";
              beq t0 0 "sm_stay0";
              li st 1;
              j "sm_next";
              label "sm_stay0";
              addi acc acc 1;
              j "sm_next";
              label "sm_s1";
              slti t1 t0 2;
              bne t1 0 "sm_to2";
              li st 0;
              j "sm_next";
              label "sm_to2";
              li st 2;
              j "sm_next";
              label "sm_s2";
              li t1 3;
              beq t0 t1 "sm_reset";
              addi acc acc 2;
              j "sm_next";
              label "sm_reset";
              li st 0;
              label "sm_next";
              addi i i (-1);
              bne i 0 "sm_loop";
            ]))

let stream () =
  let init m =
    (* circular linked list with alternating-sign values *)
    for k = 0 to 63 do
      let next = list_base + (2 * ((k + 1) mod 64)) in
      Machine.poke m ~addr:(list_base + (2 * k)) next;
      Machine.poke m ~addr:(list_base + (2 * k) + 1)
        (if k mod 3 = 0 then -(k * 5) else k * 3)
    done;
    for k = 0 to 63 do
      Machine.poke m ~addr:(mat_a + k) (k * k mod 37)
    done
  in
  Gen.stream_of_program ~init program

(* One bench iteration is ~700 instructions; CoreMark iterations/second at
   1 MHz = 1e6 * IPC / insts_per_iteration. *)
let insts_per_iteration = 700.0

let score_per_mhz ~ipc = 1.0e6 *. ipc /. insts_per_iteration /. 235.0
