module Bitpack = Cobra_util.Bitpack
module Counter = Cobra_util.Counter
module Hashing = Cobra_util.Hashing
module Slab = Cobra_util.Slab
open Cobra

type config = {
  name : string;
  latency : int;
  choice_bits : int;
  cache_bits : int;
  tag_bits : int;
  counter_bits : int;
  history_length : int;
  fetch_width : int;
}

let default ~name =
  {
    name;
    latency = 2;
    choice_bits = 12;
    cache_bits = 10;
    tag_bits = 8;
    counter_bits = 2;
    history_length = 10;
    fetch_width = 4;
  }

(* Metadata per slot: choice ctr, cache hit flag, cached ctr. *)
let slot_layout cfg = [ cfg.counter_bits; 1; cfg.counter_bits ]
let meta_layout cfg = List.concat_map (fun _ -> slot_layout cfg) (List.init cfg.fetch_width Fun.id)

let make cfg =
  (* slab layout: choice counters (one per cell), then the taken-exception
     cache, then the not-taken-exception cache; cache entry i at stride 3
     from its base — [+0]=valid, [+1]=tag, [+2]=ctr *)
  let n_choice = 1 lsl cfg.choice_bits in
  let n_cache = 1 lsl cfg.cache_bits in
  let t_base = n_choice in
  let nt_base = n_choice + (3 * n_cache) in
  let state = Slab.create (n_choice + (6 * n_cache)) in
  for i = 0 to n_choice - 1 do
    Slab.set state i (Counter.weakly_not_taken ~bits:cfg.counter_bits)
  done;
  let ce_valid off = Slab.unsafe_get state off = 1 in
  let ce_tag off = Slab.unsafe_get state (off + 1) in
  let ce_ctr off = Slab.unsafe_get state (off + 2) in
  let choice_index (ctx : Context.t) ~slot =
    Hashing.pc_index ~pc:(Context.slot_pc ctx slot) ~bits:cfg.choice_bits
  in
  let cache_index (ctx : Context.t) ~slot =
    Hashing.pc_index ~pc:(Context.slot_pc ctx slot) ~bits:cfg.cache_bits
    lxor Hashing.folded_history ctx.ghist ~len:cfg.history_length ~bits:cfg.cache_bits
  in
  let cache_tag (ctx : Context.t) ~slot =
    Hashing.fold_int
      (Hashing.mix2 (Hashing.pc_bits (Context.slot_pc ctx slot)) 11)
      ~width:62 ~bits:cfg.tag_bits
  in
  let meta_bits = Bitpack.width_of (meta_layout cfg) in
  let predict (ctx : Context.t) ~pred_in =
    let base = match pred_in with [ p ] -> p | _ -> invalid_arg (cfg.name ^ ": one predict_in") in
    let fields = ref [] in
    let pred =
      Array.init cfg.fetch_width (fun slot ->
          let ch = Slab.unsafe_get state (choice_index ctx ~slot) in
          let bias_taken = Counter.is_taken ~bits:cfg.counter_bits ch in
          (* consult the cache holding exceptions to the bias *)
          let base_off = if bias_taken then nt_base else t_base in
          let off = base_off + (3 * cache_index ctx ~slot) in
          let hit = ce_valid off && ce_tag off = cache_tag ctx ~slot in
          let taken =
            if hit then Counter.is_taken ~bits:cfg.counter_bits (ce_ctr off) else bias_taken
          in
          fields :=
            ((if hit then ce_ctr off else 0), cfg.counter_bits) :: ((if hit then 1 else 0), 1)
            :: (ch, cfg.counter_bits) :: !fields;
          if Types.unconditional_in base slot then Types.empty_opinion
          else { Types.empty_opinion with o_taken = Some taken })
    in
    (pred, Bitpack.pack ~width:meta_bits (List.rev !fields))
  in
  let update (ev : Component.event) =
    let fields = Bitpack.unpack ev.meta (meta_layout cfg) in
    let rec per_slot slot = function
      | ch :: hit :: cached :: rest ->
        let (r : Types.resolved) = ev.slots.(slot) in
        if Types.cond_branch r then begin
          let bias_taken = Counter.is_taken ~bits:cfg.counter_bits ch in
          let base_off = if bias_taken then nt_base else t_base in
          let off = base_off + (3 * cache_index ev.ctx ~slot) in
          if hit = 1 then
            Slab.unsafe_set state (off + 2)
              (Counter.update ~bits:cfg.counter_bits cached ~taken:r.r_taken)
          else if r.r_taken <> bias_taken then begin
            (* an exception to the bias: allocate in the exception cache *)
            Slab.unsafe_set state off 1;
            Slab.unsafe_set state (off + 1) (cache_tag ev.ctx ~slot);
            Slab.unsafe_set state (off + 2)
              (if r.r_taken then Counter.weakly_taken ~bits:cfg.counter_bits
               else Counter.weakly_not_taken ~bits:cfg.counter_bits)
          end;
          (* the choice table trains except when the cache corrected it *)
          let cache_was_right =
            hit = 1 && Counter.is_taken ~bits:cfg.counter_bits cached = r.r_taken
          in
          if not (cache_was_right && r.r_taken <> bias_taken) then
            Slab.unsafe_set state (choice_index ev.ctx ~slot)
              (Counter.update ~bits:cfg.counter_bits ch ~taken:r.r_taken)
        end;
        per_slot (slot + 1) rest
      | [] -> ()
      | _ -> assert false
    in
    per_slot 0 fields
  in
  let cache_bits_total =
    2 * (1 lsl cfg.cache_bits) * (1 + cfg.tag_bits + cfg.counter_bits)
  in
  Component.make ~name:cfg.name ~family:Component.Tagged_table ~latency:cfg.latency
    ~meta_bits
    ~storage:
      (Storage.make
         ~sram_bits:(((1 lsl cfg.choice_bits) * cfg.counter_bits) + cache_bits_total)
         ())
    ~state ~predict ~update ()
