(** Short-forward-branch ("hammock") decode optimisation (paper VI-C).

    Implemented as a trace transformation, mirroring what the modified BOOM
    decoder does: a conditional direct branch whose target is a short
    forward distance is converted into a set-flag micro-op (it stops being a
    control-flow instruction, so it can never mispredict and the predictor
    never trains on it); instructions in its shadow become predicated —
    when the branch is taken the skipped slots are executed as no-ops that
    still consume pipeline bandwidth, and either way the shadow acquires a
    data dependency on the flag. *)

val transform : max_offset:int -> Cobra_isa.Trace.stream -> Cobra_isa.Trace.stream

val count_sfbs : max_offset:int -> Cobra_isa.Trace.event list -> int
(** How many events of a trace would be predicated (diagnostics). *)
