(** Emitters for the paper's tables. *)

val table_1 : unit -> string
(** Table I: parameters and storage of the three designs — paper values
    next to this implementation's bit-accurate accounting. *)

val table_2 : ?config:Cobra_uarch.Config.t -> unit -> string
(** Table II: the evaluated core configuration. *)

val table_3 : unit -> string
(** Table III: evaluated systems for the SPECint17 comparison. *)

val table_attribution :
  ?insns:int -> ?design:string -> ?workload:string -> unit -> string
(** Per-component mispredict attribution (plus arbitration tallies when the
    design has a selector), measured by a [Cobra_stats] collector riding a
    hardware-guided run. Defaults to the Tourney design on gcc. *)
