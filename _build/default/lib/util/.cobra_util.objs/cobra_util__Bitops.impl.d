lib/util/bitops.ml:
