lib/synth/tech.mli:
