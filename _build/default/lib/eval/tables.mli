(** Emitters for the paper's tables. *)

val table_1 : unit -> string
(** Table I: parameters and storage of the three designs — paper values
    next to this implementation's bit-accurate accounting. *)

val table_2 : ?config:Cobra_uarch.Config.t -> unit -> string
(** Table II: the evaluated core configuration. *)

val table_3 : unit -> string
(** Table III: evaluated systems for the SPECint17 comparison. *)
