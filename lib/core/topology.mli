(** Topological models of predictor pipelines (paper Section IV-A).

    A topology is an ordering of sub-components; [Override (hi, lo)] is the
    paper's ["hi > lo"] — [hi] provides the final prediction wherever it has
    an opinion and is ready. [Arbitrate (sel, subs)] is the
    ["SEL > [a; b; ...]"] form for arbitration schemes that learn to choose
    between several incoming predictions; before [sel]'s latency has elapsed
    the first sub-topology provides the running prediction (this matches the
    paper's Fig 7, where the default path supplies the Fetch-2 prediction of
    the Tourney design). *)

type t =
  | Node of Component.t
  | Override of t * t
  | Arbitrate of Component.t * t list

val node : Component.t -> t

val ( >> ) : t -> t -> t
(** [hi >> lo] is [Override (hi, lo)] — the paper's [hi > lo]. *)

val over : Component.t -> t -> t
(** [over c t] is [node c >> t]. *)

val arbitrate : Component.t -> t list -> t

val components : t -> Component.t list
(** All components in priority order (highest priority first); the order is
    stable and used by the composer to assign component indices. *)

val max_latency : t -> int
(** Depth of the generated pipeline: the largest sub-component latency. *)

val validate : t -> (unit, string) result
(** Structural checks: component names must be unique (metadata is routed by
    identity and reports are keyed by name), arbitration lists must be
    non-empty, and an arbitration selector of latency [n] may only consume
    sub-predictions available at stage [<= n] — i.e. every sub-topology must
    contain at least one component with latency [<= n], otherwise the
    selector would read an undefined [predict_in] (paper Section III-F). *)

val spec : t -> string
(** A parameter-sensitive description of the topology used to key the
    on-disk result cache: the expression structure with each component's
    family, latency, metadata width and storage footprint. Unlike
    {!to_expression} it distinguishes same-named components whose sizing
    differs (e.g. two TAGE configurations with different table geometry).
    Runtime knobs that leave all of those unchanged (e.g. an indexing
    source with identical table sizes) must be keyed separately by the
    caller. *)

val to_expression : t -> string
(** The paper's algebraic notation, e.g.
    ["LOOP_3 > TAGE_3 > BTB_2 > BIM_2 > UBTB_1"]. *)

val pp_pipeline : Format.formatter -> t -> unit
(** Fig 4 / Fig 7-style stage diagram: which components respond at each
    Fetch-[d] stage and who provides the running composite. *)
