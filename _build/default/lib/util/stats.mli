(** Streaming statistics for performance counters and report aggregation. *)

module Running : sig
  (** Single-pass mean / variance accumulator (Welford). *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end

module Ratio : sig
  (** Hit/total ratio counter (accuracies, rates per kilo-event). *)

  type t

  val create : unit -> t
  val hit : t -> unit
  val miss : t -> unit
  val add : t -> hit:bool -> unit
  val hits : t -> int
  val total : t -> int
  val rate : t -> float
  (** [hits / total]; 0 when empty. *)
end

val harmonic_mean : float list -> float
(** Harmonic mean; 0 when the list is empty, ignores non-positive entries the
    way SPEC reporting does (they would be measurement errors). *)

val geometric_mean : float list -> float
val mean : float list -> float

val percent_delta : baseline:float -> float -> float
(** [(v - baseline) / baseline * 100]. *)

val mpki : misses:int -> instructions:int -> float
(** Misses per kilo-instruction. *)
