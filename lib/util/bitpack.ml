let width_of layout = List.fold_left ( + ) 0 layout

let pack ~width fields =
  let total = width_of (List.map snd fields) in
  if total <> width then
    invalid_arg (Printf.sprintf "Bitpack.pack: fields cover %d bits, declared %d" total width);
  let check (v, bits) =
    if bits < 0 || bits > 62 then invalid_arg "Bitpack.pack: field width out of [0,62]";
    if v < 0 || (bits < 62 && v >= 1 lsl bits) then
      invalid_arg (Printf.sprintf "Bitpack.pack: value %d does not fit in %d bits" v bits)
  in
  if width <= 62 then begin
    (* fast path: the whole vector fits one int *)
    let acc = ref 0 and pos = ref 0 in
    List.iter
      (fun ((v, bits) as f) ->
        check f;
        acc := !acc lor (v lsl !pos);
        pos := !pos + bits)
      fields;
    Bits.of_int ~width !acc
  end
  else begin
    let bitvals = Array.make width false in
    let pos = ref 0 in
    List.iter
      (fun ((v, bits) as f) ->
        check f;
        for i = 0 to bits - 1 do
          bitvals.(!pos + i) <- (v lsr i) land 1 = 1
        done;
        pos := !pos + bits)
      fields;
    Bits.init width (fun i -> bitvals.(i))
  end

(* --- allocation-free packing ------------------------------------------------- *)

let limb_bits = 62
let limb_mask = (1 lsl limb_bits) - 1

module Packer = struct
  type t = {
    width : int;
    nlimbs : int;
    scratch : int array;  (* accumulated in place, copied out by [finish] *)
    mutable pos : int;
  }

  let create ~width =
    if width < 0 then invalid_arg "Bitpack.Packer.create: negative width";
    let nlimbs = (width + limb_bits - 1) / limb_bits in
    { width; nlimbs; scratch = Array.make (max 1 nlimbs) 0; pos = 0 }

  let reset t =
    Array.fill t.scratch 0 (Array.length t.scratch) 0;
    t.pos <- 0

  let add t v ~bits =
    if bits < 0 || bits > limb_bits then
      invalid_arg "Bitpack.Packer.add: field width out of [0,62]";
    if v < 0 || (bits < limb_bits && v >= 1 lsl bits) then
      invalid_arg
        (Printf.sprintf "Bitpack.Packer.add: value %d does not fit in %d bits" v bits);
    if t.pos + bits > t.width then
      invalid_arg
        (Printf.sprintf "Bitpack.Packer.add: fields overflow declared width %d" t.width);
    let j = t.pos / limb_bits and k = t.pos mod limb_bits in
    t.scratch.(j) <- t.scratch.(j) lor ((v lsl k) land limb_mask);
    if k + bits > limb_bits then t.scratch.(j + 1) <- t.scratch.(j + 1) lor (v lsr (limb_bits - k));
    t.pos <- t.pos + bits

  let finish t =
    if t.pos <> t.width then
      invalid_arg
        (Printf.sprintf "Bitpack.Packer.finish: fields cover %d bits, declared %d" t.pos
           t.width);
    let b = Bits.of_limbs ~width:t.width (Array.sub t.scratch 0 t.nlimbs) in
    reset t;
    b
end

module Cursor = struct
  type t = { mutable bits : Bits.t; mutable pos : int }

  let create () = { bits = Bits.zero 0; pos = 0 }

  let reset t bits =
    t.bits <- bits;
    t.pos <- 0

  let take t ~bits =
    let v = Bits.extract_int t.bits ~lo:t.pos ~len:bits in
    t.pos <- t.pos + bits;
    v

  let skip t ~bits = t.pos <- t.pos + bits
end

let unpack bits layout =
  if width_of layout <> Bits.width bits then
    invalid_arg "Bitpack.unpack: layout does not match vector width";
  let pos = ref 0 in
  List.map
    (fun w ->
      let v = Bits.extract_int bits ~lo:!pos ~len:w in
      pos := !pos + w;
      v)
    layout
