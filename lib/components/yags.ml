module Bitpack = Cobra_util.Bitpack
module Counter = Cobra_util.Counter
module Hashing = Cobra_util.Hashing
open Cobra

type config = {
  name : string;
  latency : int;
  choice_bits : int;
  cache_bits : int;
  tag_bits : int;
  counter_bits : int;
  history_length : int;
  fetch_width : int;
}

let default ~name =
  {
    name;
    latency = 2;
    choice_bits = 12;
    cache_bits = 10;
    tag_bits = 8;
    counter_bits = 2;
    history_length = 10;
    fetch_width = 4;
  }

type cache_entry = { mutable valid : bool; mutable tag : int; mutable ctr : int }

(* Metadata per slot: choice ctr, cache hit flag, cached ctr. *)
let slot_layout cfg = [ cfg.counter_bits; 1; cfg.counter_bits ]
let meta_layout cfg = List.concat_map (fun _ -> slot_layout cfg) (List.init cfg.fetch_width Fun.id)

let make cfg =
  let choice = Array.make (1 lsl cfg.choice_bits) (Counter.weakly_not_taken ~bits:cfg.counter_bits) in
  let fresh_cache () =
    Array.init (1 lsl cfg.cache_bits) (fun _ -> { valid = false; tag = 0; ctr = 0 })
  in
  let t_cache = fresh_cache () and nt_cache = fresh_cache () in
  let choice_index (ctx : Context.t) ~slot =
    Hashing.pc_index ~pc:(Context.slot_pc ctx slot) ~bits:cfg.choice_bits
  in
  let cache_index (ctx : Context.t) ~slot =
    Hashing.pc_index ~pc:(Context.slot_pc ctx slot) ~bits:cfg.cache_bits
    lxor Hashing.folded_history ctx.ghist ~len:cfg.history_length ~bits:cfg.cache_bits
  in
  let cache_tag (ctx : Context.t) ~slot =
    Hashing.fold_int
      (Hashing.mix2 (Hashing.pc_bits (Context.slot_pc ctx slot)) 11)
      ~width:62 ~bits:cfg.tag_bits
  in
  let meta_bits = Bitpack.width_of (meta_layout cfg) in
  let predict (ctx : Context.t) ~pred_in =
    let base = match pred_in with [ p ] -> p | _ -> invalid_arg (cfg.name ^ ": one predict_in") in
    let fields = ref [] in
    let pred =
      Array.init cfg.fetch_width (fun slot ->
          let ch = choice.(choice_index ctx ~slot) in
          let bias_taken = Counter.is_taken ~bits:cfg.counter_bits ch in
          (* consult the cache holding exceptions to the bias *)
          let cache = if bias_taken then nt_cache else t_cache in
          let e = cache.(cache_index ctx ~slot) in
          let hit = e.valid && e.tag = cache_tag ctx ~slot in
          let taken =
            if hit then Counter.is_taken ~bits:cfg.counter_bits e.ctr else bias_taken
          in
          fields :=
            ((if hit then e.ctr else 0), cfg.counter_bits) :: ((if hit then 1 else 0), 1)
            :: (ch, cfg.counter_bits) :: !fields;
          if Types.unconditional_in base slot then Types.empty_opinion
          else { Types.empty_opinion with o_taken = Some taken })
    in
    (pred, Bitpack.pack ~width:meta_bits (List.rev !fields))
  in
  let update (ev : Component.event) =
    let fields = Bitpack.unpack ev.meta (meta_layout cfg) in
    let rec per_slot slot = function
      | ch :: hit :: cached :: rest ->
        let (r : Types.resolved) = ev.slots.(slot) in
        if Types.cond_branch r then begin
          let bias_taken = Counter.is_taken ~bits:cfg.counter_bits ch in
          let cache = if bias_taken then nt_cache else t_cache in
          let e = cache.(cache_index ev.ctx ~slot) in
          if hit = 1 then
            e.ctr <- Counter.update ~bits:cfg.counter_bits cached ~taken:r.r_taken
          else if r.r_taken <> bias_taken then begin
            (* an exception to the bias: allocate in the exception cache *)
            e.valid <- true;
            e.tag <- cache_tag ev.ctx ~slot;
            e.ctr <-
              (if r.r_taken then Counter.weakly_taken ~bits:cfg.counter_bits
               else Counter.weakly_not_taken ~bits:cfg.counter_bits)
          end;
          (* the choice table trains except when the cache corrected it *)
          let cache_was_right =
            hit = 1 && Counter.is_taken ~bits:cfg.counter_bits cached = r.r_taken
          in
          if not (cache_was_right && r.r_taken <> bias_taken) then
            choice.(choice_index ev.ctx ~slot) <-
              Counter.update ~bits:cfg.counter_bits ch ~taken:r.r_taken
        end;
        per_slot (slot + 1) rest
      | [] -> ()
      | _ -> assert false
    in
    per_slot 0 fields
  in
  let cache_bits_total =
    2 * (1 lsl cfg.cache_bits) * (1 + cfg.tag_bits + cfg.counter_bits)
  in
  Component.make ~name:cfg.name ~family:Component.Tagged_table ~latency:cfg.latency
    ~meta_bits
    ~storage:
      (Storage.make
         ~sram_bits:(((1 lsl cfg.choice_bits) * cfg.counter_bits) + cache_bits_total)
         ())
    ~predict ~update ()
