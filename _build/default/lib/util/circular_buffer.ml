type 'a t = {
  data : 'a option array;
  mutable head : int; (* sequence number of the oldest live entry *)
  mutable next : int; (* sequence number the next enqueue will get *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Circular_buffer.create: capacity < 1";
  { data = Array.make capacity None; head = 0; next = 0 }

let capacity t = Array.length t.data
let length t = t.next - t.head
let is_empty t = length t = 0
let is_full t = length t = capacity t

let slot t seq = seq mod capacity t

let enqueue t v =
  if is_full t then failwith "Circular_buffer.enqueue: full";
  let seq = t.next in
  t.data.(slot t seq) <- Some v;
  t.next <- seq + 1;
  seq

let contains t seq = seq >= t.head && seq < t.next

let get t seq =
  if not (contains t seq) then
    invalid_arg (Printf.sprintf "Circular_buffer.get: seq %d not in [%d,%d)" seq t.head t.next);
  match t.data.(slot t seq) with
  | Some v -> v
  | None -> assert false

let set t seq v =
  if not (contains t seq) then
    invalid_arg (Printf.sprintf "Circular_buffer.set: seq %d not in [%d,%d)" seq t.head t.next);
  t.data.(slot t seq) <- Some v

let oldest t = if is_empty t then None else Some (t.head, get t t.head)
let newest t = if is_empty t then None else Some (t.next - 1, get t (t.next - 1))

let dequeue t =
  match oldest t with
  | None -> None
  | Some (seq, v) ->
    t.data.(slot t seq) <- None;
    t.head <- seq + 1;
    Some (seq, v)

let drop_newer_than t seq =
  let keep_until = max t.head (seq + 1) in
  for s = keep_until to t.next - 1 do
    t.data.(slot t s) <- None
  done;
  t.next <- max t.head keep_until

let iter_from t seq f =
  for s = max seq t.head to t.next - 1 do
    f s (get t s)
  done

let iter t f = iter_from t t.head f

let to_list t =
  let acc = ref [] in
  iter t (fun seq v -> acc := (seq, v) :: !acc);
  List.rev !acc
