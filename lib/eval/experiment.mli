(** Experiment runner: a design x workload x core-configuration grid.

    Each run elaborates a fresh pipeline (untrained components) and a fresh
    core, so results are independent and deterministic. Grids ([run_jobs],
    [run_matrix]) are executed through {!Cobra_runner}: in parallel across
    [COBRA_JOBS] domains, consulting the on-disk result cache (disable with
    [COBRA_CACHE=0]), with per-job retry and failure isolation.
    [COBRA_JOBS=1] reproduces the serial harness bit-for-bit. *)

type result = {
  design : string;
  workload : string;
  perf : Cobra_uarch.Perf.t;
}

val default_insns : unit -> int
(** Instructions per run; override with the [COBRA_INSNS] environment
    variable (the bench harness honours it). Read per call, so tests can
    set and unset the variable; a set-but-malformed or non-positive value
    raises [Failure] naming the variable — it never silently falls back to
    the default. *)

val run :
  ?insns:int ->
  ?config:Cobra_uarch.Config.t ->
  ?pipeline_config:Cobra.Pipeline.config ->
  ?transform:(Cobra_isa.Trace.stream -> Cobra_isa.Trace.stream) ->
  Designs.t ->
  Cobra_workloads.Suite.entry ->
  result
(** A single run in the calling domain, bypassing pool and cache. When
    [COBRA_STATS] is enabled, a {!Cobra_stats.Collector} rides along: the
    report is exported to [COBRA_STATS_DIR] as JSON + CSV and published to
    {!Cobra_stats.Sink} (the parallel runner forwards it into its telemetry
    stream). With stats disabled no collection machinery is elaborated. *)

val run_with_stats :
  ?insns:int ->
  ?config:Cobra_uarch.Config.t ->
  ?pipeline_config:Cobra.Pipeline.config ->
  ?transform:(Cobra_isa.Trace.stream -> Cobra_isa.Trace.stream) ->
  Designs.t ->
  Cobra_workloads.Suite.entry ->
  result * Cobra_stats.Report.t
(** Like {!run} but always collects statistics (regardless of
    [COBRA_STATS]) and returns the report instead of exporting or
    publishing it — the entry point for tests and the [cobra stats] CLI. *)

type job
(** One grid cell: a design/workload pair plus its configuration, ready to
    be dispatched to the runner. *)

val job :
  ?insns:int ->
  ?config:Cobra_uarch.Config.t ->
  ?pipeline_config:Cobra.Pipeline.config ->
  ?transform:(string * (Cobra_isa.Trace.stream -> Cobra_isa.Trace.stream)) ->
  Designs.t ->
  Cobra_workloads.Suite.entry ->
  job
(** [transform] carries a tag naming the stream transformation — the tag
    participates in the cache key (functions cannot be digested). *)

val run_jobs_results :
  ?label:string -> job list -> (result, Cobra_runner.error) Stdlib.result list
(** Run a grid through the pool + cache. Outcomes are in submission order;
    a job that keeps raising after its retry budget surfaces as [Error]
    without aborting the rest of the grid. *)

val run_jobs : ?label:string -> job list -> result list
(** Like {!run_jobs_results} but raises [Failure] (naming the design,
    workload and exception) on the first failed job — after the whole grid
    has been given the chance to run. *)

val run_matrix :
  ?insns:int ->
  ?config:Cobra_uarch.Config.t ->
  Designs.t list ->
  Cobra_workloads.Suite.entry list ->
  result list
(** Results grouped workload-major (all designs for workload 1, then
    workload 2, ...) — the order is deterministic regardless of worker
    count. *)

val find_opt : result list -> design:string -> workload:string -> result option

val find : result list -> design:string -> workload:string -> result
(** Raises [Failure] naming the missing design/workload pair and the
    results actually present. *)
