(** Deterministic branch-stream fuzzer for the conformance kit.

    Generates the hard-to-predict branch shapes that predictor papers keep
    rediscovering (Lin & Tarsa's "not a solved problem" taxonomy): nested
    counted loops, correlated/history-carried branches, aliasing-stress PC
    sets, phase changes and repair-heavy mispredict storms. Everything is a
    pure function of the scenario seed, so any failure replays from one
    integer. *)

open Cobra

type shape =
  | Loops  (** nested counted loops with small, mixed trip counts *)
  | Correlated  (** direction carried by another branch's recent outcomes *)
  | Aliasing  (** few table indices shared by many PCs, conflicting biases *)
  | Phases  (** bias inversions every few hundred branches *)
  | Storms  (** near-random directions plus frequent wrong-path excursions *)
  | Mixed  (** round-robin through all of the above *)
  | Ladder  (** per-PC de Bruijn B(2,6) direction sequences (history probe) *)
  | Alias_stress  (** deterministic conflicting biases over a dense PC set *)
  | Loop_scan  (** counted loops with trip counts up to 257 (loop-bound probe) *)

val all_shapes : shape list
val shape_name : shape -> string
val shape_names : string list

val shape_of_name : string -> shape option
(** Case-insensitive (and whitespace-trimmed) lookup by {!shape_name}. *)

val shape_of_name_exn : string -> shape
(** Like {!shape_of_name} but raises [Failure] with a message listing the
    valid shape names — the error the CLI surfaces verbatim. *)

type scenario = { seed : int; shape : shape; length : int }

(* --- component-level event scripts ---------------------------------------- *)

(** What happens to a fetch packet after predict. *)
type path =
  | Commit  (** fire, then commit-time update; histories advance *)
  | Wrong_path  (** fire, then repair (squashed); histories roll back *)
  | Storm of int  (** fire, then mispredict with this culprit slot, then update *)

type packet = {
  pk_ctx : Context.t;
  pk_pred_in : Types.prediction list;
      (** synthesized incoming predictions, [arity] of them *)
  pk_slots : Types.resolved array;
  pk_path : path;
}

val packets : scenario -> arity:int -> fetch_width:int -> packet list
(** A fully-resolved event script: per packet, the predict-time context
    (with histories threaded exactly as a speculative frontend would), the
    incoming predictions, the resolved slots and the packet's fate. The
    lockstep cross-check replays one script through a golden model and its
    real component. *)

(* --- pipeline-level branch streams ----------------------------------------- *)

type branch = {
  br_pc : int;
  br_kind : Types.branch_kind;
  br_taken : bool;
  br_target : int;
}

val branches : scenario -> branch list
(** One branch at a time (the [Software_model] regime), same shapes. Feeds
    the twin-design differential and the repair-restores-state metamorphic
    check. *)
