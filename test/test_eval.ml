open Cobra_eval

let check = Alcotest.check

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  loop 0

(* --- designs --------------------------------------------------------------- *)

let test_designs_validate () =
  List.iter
    (fun (d : Designs.t) ->
      match Cobra.Topology.validate (d.Designs.make ()) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s invalid: %s" d.Designs.name msg)
    Designs.all

let test_design_expressions () =
  let expr d = Cobra.Topology.to_expression (d.Designs.make ()) in
  check Alcotest.string "TAGE-L" "LOOP_3 > TAGE_3 > BTB_2 > BIM_2 > UBTB_1"
    (expr Designs.tage_l);
  check Alcotest.string "B2" "GTAG_3 > BTB_2 > BIM_2" (expr Designs.b2);
  check Alcotest.string "Tourney" "TOURNEY_3 > [GBIM_2 > BTB_2, LBIM_2]"
    (expr Designs.tourney)

let test_storage_close_to_table_1 () =
  (* the direction-state storage convention should land within 40% of the
     paper's numbers *)
  List.iter
    (fun (d : Designs.t) ->
      let ours = Designs.direction_state_kb d in
      let paper = d.Designs.paper_storage_kb in
      let ratio = ours /. paper in
      check Alcotest.bool
        (Printf.sprintf "%s: %.1f KB vs paper %.1f KB" d.Designs.name ours paper)
        true
        (ratio > 0.6 && ratio < 1.4))
    Designs.all

let test_fresh_pipelines_are_untrained () =
  let d = Designs.tage_l in
  let p1 = Designs.pipeline d and p2 = Designs.pipeline d in
  check Alcotest.bool "distinct component instances" true
    (Cobra.Pipeline.components p1 != Cobra.Pipeline.components p2)

let test_tage_latency_variant () =
  let d = Designs.tage_l_with_latency 2 in
  check Alcotest.int "pipeline depth follows component latency" 3
    (Cobra.Pipeline.depth (Designs.pipeline d));
  (* LOOP_3 still forces depth 3; the TAGE node itself is latency 2 *)
  let comps = Cobra.Topology.components (d.Designs.make ()) in
  let tage = List.find (fun (c : Cobra.Component.t) -> c.Cobra.Component.name = "TAGE") comps in
  check Alcotest.int "tage latency" 2 tage.Cobra.Component.latency

(* --- experiments ----------------------------------------------------------------- *)

let test_experiment_deterministic () =
  let w = Cobra_workloads.Suite.find "pattern-ttn" in
  let a = Experiment.run ~insns:5_000 Designs.b2 w in
  let b = Experiment.run ~insns:5_000 Designs.b2 w in
  check Alcotest.int "cycles equal" a.Experiment.perf.Cobra_uarch.Perf.cycles
    b.Experiment.perf.Cobra_uarch.Perf.cycles

let test_matrix_covers_grid () =
  let ws =
    List.map Cobra_workloads.Suite.find [ "loop7"; "calls" ]
  in
  let rs = Experiment.run_matrix ~insns:3_000 Designs.all ws in
  check Alcotest.int "3 designs x 2 workloads" 6 (List.length rs);
  ignore (Experiment.find rs ~design:"B2" ~workload:"calls")

(* --- emitters ---------------------------------------------------------------------- *)

let test_table_emitters () =
  let t1 = Tables.table_1 () in
  check Alcotest.bool "t1 mentions TAGE-L" true (contains t1 "TAGE-L");
  check Alcotest.bool "t1 mentions paper storage" true (contains t1 "28.0 KB");
  let t2 = Tables.table_2 () in
  check Alcotest.bool "t2 mentions ROB" true (contains t2 "128-entry ROB");
  let t3 = Tables.table_3 () in
  check Alcotest.bool "t3 mentions Skylake" true (contains t3 "Skylake")

let test_figure_7_emitter () =
  let f = Figures.figure_7 () in
  check Alcotest.bool "has stage lines" true (contains f "Fetch-1");
  check Alcotest.bool "has tourney expression" true (contains f "TOURNEY_3 > [")

let test_figure_8_9_emitters () =
  check Alcotest.bool "fig8 has Meta" true (contains (Figures.figure_8 ()) "Meta");
  check Alcotest.bool "fig9 has issue units" true (contains (Figures.figure_9 ()) "Issue units")

let test_figure_10_emitter () =
  let ws = Cobra_workloads.Suite.specint in
  let rs = Experiment.run_matrix ~insns:2_000 Designs.all ws in
  let f = Figures.figure_10 rs in
  check Alcotest.bool "has harmonic mean" true (contains f "HARMEAN");
  check Alcotest.bool "has all benchmarks" true
    (List.for_all (fun b -> contains f b) Reference.benchmarks)

(* --- sweeps ----------------------------------------------------------------------- *)

let test_sweep_reports () =
  let checks =
    [
      (Sweeps.tage_storage_sweep ~insns:1_500 (), "TAGE KB");
      (Sweeps.indexing_ablation ~insns:1_500 (), "ghist[10]");
      (Sweeps.ubtb_value ~insns:1_500 (), "UBTB_1");
      (Sweeps.indirect_predictor ~insns:1_500 (), "ITTAGE");
      (Sweeps.ras_repair ~insns:1_500 (), "checkpointed");
      (Sweeps.fetch_width_sweep ~insns:1_500 (), "width");
    ]
  in
  List.iter
    (fun (report, marker) ->
      check Alcotest.bool ("report mentions " ^ marker) true (contains report marker))
    checks

(* --- ablations -------------------------------------------------------------------- *)

(* Regression: the VI-B Dhrystone sensitivity runs used to be recovered from
   the flat result list by index arithmetic (List.nth at 3*n), which silently
   mispaired results whenever the job list changed shape. The keyed lookup
   must find both Dhrystone variants and produce a coherent report. *)
let test_history_repair_keyed_results () =
  let o = Ablations.history_repair ~insns:400 () in
  check Alcotest.string "id" "VI-B" o.Ablations.id;
  check Alcotest.bool "Dhrystone sensitivity present" true
    (contains o.Ablations.measured "Dhrystone replay IPC");
  check Alcotest.bool "per-workload table present" true
    (contains o.Ablations.report "IPC repair")

(* --- reference data ------------------------------------------------------------------ *)

let test_reference_complete () =
  List.iter
    (fun (s : Reference.series) ->
      List.iter
        (fun b ->
          check Alcotest.bool (s.Reference.system ^ "/" ^ b) true
            (List.mem_assoc b s.Reference.mpki && List.mem_assoc b s.Reference.ipc))
        Reference.benchmarks)
    [ Reference.skylake; Reference.graviton ]

let test_paper_claims_cover_experiments () =
  List.iter
    (fun id ->
      check Alcotest.bool id true (List.mem_assoc id Reference.paper_claims))
    [ "I-intro"; "VI-A"; "VI-B"; "VI-C"; "Fig10"; "Fig8"; "Fig9" ]

let () =
  Alcotest.run "cobra_eval"
    [
      ( "designs",
        [
          Alcotest.test_case "validate" `Quick test_designs_validate;
          Alcotest.test_case "expressions" `Quick test_design_expressions;
          Alcotest.test_case "storage vs Table I" `Quick test_storage_close_to_table_1;
          Alcotest.test_case "fresh pipelines" `Quick test_fresh_pipelines_are_untrained;
          Alcotest.test_case "latency variant" `Quick test_tage_latency_variant;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "deterministic" `Quick test_experiment_deterministic;
          Alcotest.test_case "matrix grid" `Quick test_matrix_covers_grid;
        ] );
      ( "emitters",
        [
          Alcotest.test_case "tables" `Quick test_table_emitters;
          Alcotest.test_case "figure 7" `Quick test_figure_7_emitter;
          Alcotest.test_case "figures 8/9" `Quick test_figure_8_9_emitters;
          Alcotest.test_case "figure 10" `Slow test_figure_10_emitter;
        ] );
      ("sweeps", [ Alcotest.test_case "reports" `Slow test_sweep_reports ]);
      ( "ablations",
        [ Alcotest.test_case "VI-B keyed results" `Quick test_history_repair_keyed_results ] );
      ( "reference",
        [
          Alcotest.test_case "complete" `Quick test_reference_complete;
          Alcotest.test_case "claims" `Quick test_paper_claims_cover_experiments;
        ] );
    ]
