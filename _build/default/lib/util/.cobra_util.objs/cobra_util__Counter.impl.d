lib/util/counter.ml:
