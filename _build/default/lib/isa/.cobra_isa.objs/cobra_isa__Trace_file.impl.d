lib/isa/trace_file.ml: Buffer Cobra Format Fun List Printf String Trace
