(** Set-associative branch target buffer (paper III-G2).

    Learns targets and kinds of taken branches. Each fetch-packet slot looks
    up its own set; on a tag hit the component contributes branch existence,
    kind and target — for unconditional branches also the taken direction —
    while leaving conditional directions to counter tables (the paper's
    Fig 3 decoupled-BTB composition). The hit way is stored in metadata so
    the update can write the correct way without a second read. *)

type config = {
  name : string;
  latency : int;
  sets : int;  (** power of two *)
  ways : int;
  tag_bits : int;
  fetch_width : int;
}

val default : name:string -> config
(** 2K entries: 512 sets x 4 ways, 14-bit tags, latency 2, 4-wide. *)

val make : config -> Cobra.Component.t
val entries : config -> int
